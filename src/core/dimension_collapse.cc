#include "core/dimension_collapse.h"

#include <algorithm>
#include <set>

#include "cq/homomorphism.h"
#include "cq/product.h"
#include "fo/iso.h"
#include "util/check.h"

namespace featsep {

namespace {

std::vector<Value> SortedComplement(const std::vector<Value>& set,
                                    const std::vector<Value>& universe) {
  std::vector<Value> out;
  for (Value e : universe) {
    if (!std::binary_search(set.begin(), set.end(), e)) out.push_back(e);
  }
  return out;
}

}  // namespace

EntitySetFamily CqDefinableEntitySets(const Database& db,
                                      std::size_t max_product_facts) {
  std::vector<Value> entities = db.Entities();
  std::sort(entities.begin(), entities.end());
  std::size_t n = entities.size();
  FEATSEP_CHECK_LE(n, 16u)
      << "CqDefinableEntitySets enumerates 2^|entities| products";

  std::set<std::vector<Value>> sets;

  // Nonempty definable sets: up-closures of products of entity subsets.
  for (std::uint64_t mask = 1; mask < (1ULL << n); ++mask) {
    std::vector<const Database*> factors;
    std::vector<std::vector<Value>> tuples;
    for (std::size_t i = 0; i < n; ++i) {
      if ((mask >> i) & 1) {
        factors.push_back(&db);
        tuples.push_back({entities[i]});
      }
    }
    auto product = DirectProduct(factors, tuples, max_product_facts);
    FEATSEP_CHECK(product.has_value())
        << "product exceeds max_product_facts";
    std::vector<Value> definable;
    for (Value e : entities) {
      if (HomomorphismExists(product->db, db, {{product->tuple[0], e}})) {
        definable.push_back(e);
      }
    }
    sets.insert(std::move(definable));
  }

  // The empty set is definable iff some CQ has empty output. Sufficient
  // detection used here: a relation with no all-equal fact R(y,…,y) makes
  // q(x) = η(x) ∧ R(y,…,y) empty. (Complete detection would decide whether
  // D is hom-universal for its schema; the witness databases of Section 8
  // are covered by this test.)
  for (RelationId r = 0; r < db.schema().size(); ++r) {
    bool has_all_equal = false;
    for (FactIndex fi : db.FactsOf(r)) {
      const Fact& fact = db.fact(fi);
      has_all_equal = std::all_of(
          fact.args.begin(), fact.args.end(),
          [&](Value v) { return v == fact.args[0]; });
      if (has_all_equal) break;
    }
    if (!has_all_equal) {
      sets.insert(std::vector<Value>{});
      break;
    }
  }

  return EntitySetFamily(sets.begin(), sets.end());
}

EntitySetFamily FoDefinableEntitySets(const Database& db) {
  std::vector<Value> entities = db.Entities();
  std::sort(entities.begin(), entities.end());

  // Automorphism orbits via pairwise pointed-isomorphism tests.
  std::vector<std::vector<Value>> orbits;
  std::vector<bool> assigned(entities.size(), false);
  for (std::size_t i = 0; i < entities.size(); ++i) {
    if (assigned[i]) continue;
    std::vector<Value> orbit = {entities[i]};
    assigned[i] = true;
    for (std::size_t j = i + 1; j < entities.size(); ++j) {
      if (!assigned[j] &&
          AreIsomorphic(db, {entities[i]}, db, {entities[j]})) {
        orbit.push_back(entities[j]);
        assigned[j] = true;
      }
    }
    orbits.push_back(std::move(orbit));
  }

  FEATSEP_CHECK_LE(orbits.size(), 16u)
      << "FoDefinableEntitySets enumerates 2^|orbits| unions";
  EntitySetFamily family;
  for (std::uint64_t mask = 0; mask < (1ULL << orbits.size()); ++mask) {
    std::vector<Value> set;
    for (std::size_t i = 0; i < orbits.size(); ++i) {
      if ((mask >> i) & 1) {
        set.insert(set.end(), orbits[i].begin(), orbits[i].end());
      }
    }
    std::sort(set.begin(), set.end());
    family.push_back(std::move(set));
  }
  return family;
}

std::optional<std::pair<std::vector<Value>, std::vector<Value>>>
FindIntersectionClosureViolation(const EntitySetFamily& family,
                                 const std::vector<Value>& entities) {
  std::vector<Value> universe = entities;
  std::sort(universe.begin(), universe.end());

  std::set<std::vector<Value>> closed;
  for (const std::vector<Value>& set : family) {
    std::vector<Value> sorted = set;
    std::sort(sorted.begin(), sorted.end());
    closed.insert(SortedComplement(sorted, universe));
    closed.insert(std::move(sorted));
  }

  std::vector<std::vector<Value>> members(closed.begin(), closed.end());
  for (std::size_t i = 0; i < members.size(); ++i) {
    for (std::size_t j = i + 1; j < members.size(); ++j) {
      std::vector<Value> intersection;
      std::set_intersection(members[i].begin(), members[i].end(),
                            members[j].begin(), members[j].end(),
                            std::back_inserter(intersection));
      if (closed.count(intersection) == 0) {
        return std::make_pair(members[i], members[j]);
      }
    }
  }
  return std::nullopt;
}

bool IsLinearFamily(const EntitySetFamily& family) {
  for (std::size_t i = 0; i < family.size(); ++i) {
    for (std::size_t j = i + 1; j < family.size(); ++j) {
      std::vector<Value> a = family[i];
      std::vector<Value> b = family[j];
      std::sort(a.begin(), a.end());
      std::sort(b.begin(), b.end());
      bool a_in_b = std::includes(b.begin(), b.end(), a.begin(), a.end());
      bool b_in_a = std::includes(a.begin(), a.end(), b.begin(), b.end());
      if (!a_in_b && !b_in_a) return false;
    }
  }
  return true;
}

}  // namespace featsep
