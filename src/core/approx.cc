#include "core/approx.h"

#include <utility>
#include <vector>

#include "cq/enumeration.h"
#include "linsep/min_error.h"
#include "relational/database_ops.h"
#include "util/check.h"

namespace featsep {

CqmApxSepResult DecideCqmApxSep(const TrainingDatabase& training,
                                std::size_t m, double epsilon,
                                std::size_t max_variable_occurrences) {
  FEATSEP_CHECK(training.IsFullyLabeled());
  FEATSEP_CHECK_GE(epsilon, 0.0);
  FEATSEP_CHECK_LT(epsilon, 1.0);

  EnumerationOptions options;
  options.max_variable_occurrences = max_variable_occurrences;
  Statistic all_features(EnumerateFeatureQueries(
      training.database().schema_ptr(), m, options));
  TrainingCollection collection =
      MakeTrainingCollection(all_features, training);
  MinErrorResult best = MinimizeErrors(collection);

  CqmApxSepResult result;
  result.min_errors = best.errors;
  double budget =
      epsilon * static_cast<double>(training.Entities().size());
  result.separable_with_error = static_cast<double>(best.errors) <= budget;

  // Prune zero-weight features for the returned model.
  std::vector<ConjunctiveQuery> used;
  std::vector<Rational> weights;
  for (std::size_t i = 0; i < all_features.dimension(); ++i) {
    if (!best.classifier.weights()[i].is_zero()) {
      used.push_back(all_features.feature(i));
      weights.push_back(best.classifier.weights()[i]);
    }
  }
  result.model = SeparatorModel{
      Statistic(std::move(used)),
      LinearClassifier(best.classifier.threshold(), std::move(weights))};
  FEATSEP_CHECK_EQ(result.model->TrainingErrors(training), best.errors);
  return result;
}

std::shared_ptr<TrainingDatabase> ReduceSepToApxSep(
    const TrainingDatabase& training, double epsilon) {
  FEATSEP_CHECK_GE(epsilon, 0.0);
  FEATSEP_CHECK_LT(epsilon, 0.5) << "Prop 7.1 requires epsilon < 1/2";
  std::size_t n = training.Entities().size();
  FEATSEP_CHECK_GT(n, 0u);

  // Smallest even K with K/2 ≤ ε(n+K) < K/2 + 1; exists because the
  // admissible interval for K has length 1/(1/2−ε) ≥ 2.
  std::size_t k = 0;
  bool found = false;
  // K ≤ εn/(1/2−ε) + 2 bounds the search.
  std::size_t bound =
      static_cast<std::size_t>(epsilon * n / (0.5 - epsilon)) + 4;
  for (; k <= bound; k += 2) {
    double budget = epsilon * static_cast<double>(n + k);
    if (static_cast<double>(k) / 2.0 <= budget &&
        budget < static_cast<double>(k) / 2.0 + 1.0) {
      found = true;
      break;
    }
  }
  FEATSEP_CHECK(found) << "no admissible anchor count K for epsilon="
                       << epsilon << ", n=" << n;

  auto db = std::make_shared<Database>(Copy(training.database()));
  RelationId eta = db->schema().entity_relation();
  auto result = std::make_shared<TrainingDatabase>(db);
  for (Value e : training.Entities()) {
    result->SetLabel(e, training.label(e));
  }
  for (std::size_t i = 0; i < k; ++i) {
    Value anchor = db->Intern("apx_anchor_" + std::to_string(i));
    db->AddFact(eta, {anchor});
    result->SetLabel(anchor, i % 2 == 0 ? kPositive : kNegative);
  }
  return result;
}

}  // namespace featsep
