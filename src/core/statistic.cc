#include "core/statistic.h"

#include <memory>
#include <optional>
#include <sstream>
#include <utility>

#include "cq/evaluation.h"
#include "serve/eval_service.h"
#include "util/check.h"

namespace featsep {

Statistic::Statistic(std::vector<ConjunctiveQuery> features)
    : features_(std::move(features)) {}

const ConjunctiveQuery& Statistic::feature(std::size_t i) const {
  FEATSEP_CHECK_LT(i, features_.size());
  return features_[i];
}

FeatureVector Statistic::Vector(const Database& db, Value entity,
                                serve::EvalService* service) const {
  if (service != nullptr) return service->Vector(features_, db, entity);
  FeatureVector vector;
  vector.reserve(features_.size());
  for (const ConjunctiveQuery& q : features_) {
    vector.push_back(CqEvaluator(q).SelectsEntity(db, entity) ? 1 : -1);
  }
  return vector;
}

std::vector<FeatureVector> Statistic::Matrix(
    const Database& db, serve::EvalService* service) const {
  if (service != nullptr) return service->Matrix(features_, db);
  std::vector<Value> entities = db.Entities();
  std::vector<FeatureVector> matrix(entities.size());
  for (std::size_t i = 0; i < entities.size(); ++i) {
    matrix[i].reserve(features_.size());
  }
  // Evaluate feature-by-feature so each evaluator's canonical database is
  // built once.
  for (const ConjunctiveQuery& q : features_) {
    CqEvaluator evaluator(q);
    for (std::size_t i = 0; i < entities.size(); ++i) {
      matrix[i].push_back(evaluator.SelectsEntity(db, entities[i]) ? 1 : -1);
    }
  }
  return matrix;
}

PartialMatrix Statistic::TryMatrix(const Database& db, ExecutionBudget* budget,
                                   serve::EvalService* service) const {
  std::vector<Value> entities = db.Entities();
  PartialMatrix partial;
  partial.rows.assign(entities.size(), FeatureVector(features_.size(), -1));
  partial.valid.assign(entities.size(),
                       std::vector<char>(features_.size(), 0));
  // A zero/expired/cancelled budget at entry: all cells invalid, no kernel
  // work at all.
  if (!RecheckBudget(budget)) {
    partial.outcome = budget->outcome();
    return partial;
  }
  if (service != nullptr) {
    std::vector<std::shared_ptr<const serve::FeatureAnswer>> answers =
        service->TryResolve(features_, db, budget);
    for (std::size_t j = 0; j < features_.size(); ++j) {
      if (answers[j] == nullptr) continue;  // Aborted column stays invalid.
      for (std::size_t i = 0; i < entities.size(); ++i) {
        partial.rows[i][j] = answers[j]->Selects(db, entities[i]) ? 1 : -1;
        partial.valid[i][j] = 1;
      }
    }
    partial.outcome = OutcomeOf(budget);
    return partial;
  }
  for (std::size_t j = 0; j < features_.size(); ++j) {
    CqEvaluator evaluator(features_[j]);
    for (std::size_t i = 0; i < entities.size(); ++i) {
      std::optional<bool> selects =
          evaluator.TrySelectsEntity(db, entities[i], budget);
      if (!selects.has_value()) {
        // The budget outcome is sticky, so every remaining cell would be
        // interrupted too; stop here and leave them invalid.
        partial.outcome = OutcomeOf(budget);
        return partial;
      }
      partial.rows[i][j] = *selects ? 1 : -1;
      partial.valid[i][j] = 1;
    }
  }
  partial.outcome = OutcomeOf(budget);
  return partial;
}

std::size_t Statistic::TotalAtoms() const {
  std::size_t total = 0;
  for (const ConjunctiveQuery& q : features_) total += q.NumAtoms(true);
  return total;
}

std::string Statistic::ToString() const {
  std::ostringstream out;
  out << "Statistic[" << features_.size() << "](";
  for (std::size_t i = 0; i < features_.size(); ++i) {
    if (i > 0) out << "; ";
    out << features_[i].ToString();
  }
  out << ")";
  return out.str();
}

Labeling SeparatorModel::Apply(const Database& db,
                               serve::EvalService* service) const {
  Labeling labeling;
  std::vector<Value> entities = db.Entities();
  std::vector<FeatureVector> matrix = statistic.Matrix(db, service);
  for (std::size_t i = 0; i < entities.size(); ++i) {
    labeling.Set(entities[i], classifier.Classify(matrix[i]));
  }
  return labeling;
}

std::size_t SeparatorModel::TrainingErrors(
    const TrainingDatabase& training) const {
  Labeling predicted = Apply(training.database());
  std::size_t errors = 0;
  for (Value e : training.Entities()) {
    if (predicted.Get(e) != training.label(e)) ++errors;
  }
  return errors;
}

TrainingCollection MakeTrainingCollection(const Statistic& statistic,
                                          const TrainingDatabase& training,
                                          serve::EvalService* service) {
  TrainingCollection collection;
  std::vector<Value> entities = training.Entities();
  std::vector<FeatureVector> matrix =
      statistic.Matrix(training.database(), service);
  for (std::size_t i = 0; i < entities.size(); ++i) {
    collection.emplace_back(std::move(matrix[i]),
                            training.label(entities[i]));
  }
  return collection;
}

}  // namespace featsep
