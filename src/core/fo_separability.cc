#include "core/fo_separability.h"

#include "fo/iso.h"
#include "util/check.h"

namespace featsep {

FoSepResult DecideFoSep(const TrainingDatabase& training) {
  FEATSEP_CHECK(training.IsFullyLabeled());
  const Database& db = training.database();
  FoSepResult result;
  for (Value p : training.PositiveExamples()) {
    for (Value n : training.NegativeExamples()) {
      if (AreIsomorphic(db, {p}, db, {n})) {
        result.separable = false;
        result.conflict = std::make_pair(p, n);
        return result;
      }
    }
  }
  result.separable = true;
  return result;
}

}  // namespace featsep
