#ifndef FEATSEP_CORE_DIMENSION_BOUNDED_H_
#define FEATSEP_CORE_DIMENSION_BOUNDED_H_

#include <cstddef>
#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "core/statistic.h"
#include "qbe/qbe.h"
#include "relational/training_database.h"

namespace featsep {

/// A QBE oracle for a query class L: decides whether an L-explanation
/// exists for the given instance. Used by the (L, ℓ)-separability test
/// (paper, Lemma 6.3); bind it to SolveCqQbe / SolveGhwQbe / SolveCqmQbe.
using QbeOracle = std::function<bool(const QbeInstance&)>;

/// Result of the dimension-bounded separability test.
struct SepDimResult {
  bool separable = false;
  /// When separable: for each of the ℓ features, the positive side of the
  /// bipartition it realizes (entities mapped to +1 by that feature). A
  /// concrete explanation query per column can be recovered by re-running
  /// the QBE solver on that bipartition.
  std::vector<std::vector<Value>> feature_positive_sets;
};

/// The (L, ℓ)-separability test (paper, Lemma 6.3): (D, λ) is L-separable
/// by a statistic of dimension ≤ ℓ iff one can choose a ±1 vector per
/// entity such that (a) the vectors are linearly separable w.r.t. λ, and
/// (b) each coordinate's bipartition of the entities admits an
/// L-explanation.
///
/// Implementation: enumerate the bipartitions of η(D) (2^{|η(D)|−1} of
/// them), keep those passing the QBE oracle, then search for ≤ ℓ of them
/// (with repetition allowed, which never helps, so without) whose induced
/// vectors separate λ — checked by exact LP. This mirrors the
/// guess-and-check structure driving the coNEXPTIME/EXPTIME/NP-completeness
/// results of Theorem 6.6 / 6.10: the cost is exponential in |η(D)| on top
/// of the oracle's own cost.
SepDimResult DecideSepDim(const TrainingDatabase& training, std::size_t ell,
                          const QbeOracle& oracle);

/// Convenience oracles over a fixed database.
QbeOracle MakeCqQbeOracle(const QbeOptions& options = {});
QbeOracle MakeGhwQbeOracle(std::size_t k, const QbeOptions& options = {});
QbeOracle MakeCqmQbeOracle(std::size_t m,
                           std::size_t max_variable_occurrences = 0);

/// A QBE solver that also returns the explanation query (for materializing
/// the dimension-bounded statistic); bind to SolveCqQbe or SolveCqmQbe.
using QbeExplainer = std::function<QbeResult(const QbeInstance&)>;

/// Materializes an explicit (statistic, classifier) model from a positive
/// SepDimResult: per feature column, re-solves QBE on the recorded
/// bipartition to obtain a concrete feature query, then fits the exact LP.
/// Returns nullopt only if the explainer fails to return queries (e.g., a
/// GHW oracle that decides without materializing — Theorem 5.7's point).
std::optional<SeparatorModel> BuildSepDimModel(
    const TrainingDatabase& training, const SepDimResult& result,
    const QbeExplainer& explainer);

/// The Lemma 6.5 reduction: transforms a restricted QBE instance (unary
/// S⁺, S⁻ = dom(D) \ S⁺, both nonempty) into a training database (D', λ')
/// over the schema extended with η and ℓ−1 fresh unary symbols κᵢ, such
/// that an L-explanation for the QBE instance exists iff (D', λ') is
/// L-separable by a statistic with ℓ features.
std::shared_ptr<TrainingDatabase> ReduceQbeToSepEll(
    const Database& db, const std::vector<Value>& s_plus, std::size_t ell);

}  // namespace featsep

#endif  // FEATSEP_CORE_DIMENSION_BOUNDED_H_
