#ifndef FEATSEP_CORE_GHW_SEPARABILITY_H_
#define FEATSEP_CORE_GHW_SEPARABILITY_H_

#include <cstddef>
#include <memory>
#include <optional>
#include <utility>
#include <vector>

#include "linsep/linear_classifier.h"
#include "relational/database.h"
#include "relational/training_database.h"

namespace featsep {

/// The →_k structure over the entities of a database (paper, Section 5):
/// the preorder e ≤ e' iff (D, e) →_k (D, e') — equivalently, every
/// GHW(k) feature query selecting e also selects e' (Prop 5.2) — with its
/// equivalence classes and a topological sort.
struct GhwEntityStructure {
  std::vector<Value> entities;          ///< η(D) in database order.
  std::vector<std::vector<bool>> leq;   ///< leq[i][j] = (entities[i] ≤ entities[j]).
  std::vector<std::size_t> class_of;    ///< Entity index -> class id.
  std::vector<std::vector<std::size_t>> classes;  ///< Class -> entity idxs.
  /// Class ids in a topological order of the induced partial order: if
  /// class A ≤ class B then A appears before B.
  std::vector<std::size_t> topo_order;

  std::size_t num_classes() const { return classes.size(); }
};

/// Computes the →_k structure. Polynomial for fixed k (Prop 5.1), with one
/// shared cover-game solver across all entity pairs.
GhwEntityStructure ComputeGhwStructure(const Database& db, std::size_t k);

/// Result of GHW(k)-SEP.
struct GhwSepResult {
  bool separable = false;
  /// When inseparable: two differently-labeled, →_k-equivalent entities
  /// (the failure witness of the GHW(k)-separability test, Prop 5.5).
  std::optional<std::pair<Value, Value>> conflict;
};

/// Decides GHW(k)-SEP in polynomial time (Theorem 5.3): accepts iff no
/// →_k-equivalence class mixes labels.
GhwSepResult DecideGhwSep(const TrainingDatabase& training, std::size_t k);

/// Algorithm 1 (paper, Section 5.3): classification by an *implicit*
/// statistic Π = (q_{e₁}, …, q_{e_m}) over the topologically sorted class
/// representatives — the feature queries may be exponentially large
/// (Theorem 5.7) and are never materialized; every indicator
/// 1_{q_{e_i}(D')}(f) is evaluated as the game test (D, e_i) →_k (D', f).
class GhwClassifier {
 public:
  /// Trains on a GHW(k)-separable training database; returns nullopt when
  /// the input is not GHW(k)-separable. Keeps a shared reference to the
  /// training database (needed at classification time).
  static std::optional<GhwClassifier> Train(
      std::shared_ptr<const TrainingDatabase> training, std::size_t k);

  /// Labels every entity of the evaluation database so that some (Π, Λ)
  /// GHW(k)-separates both the training data and the produced labeling
  /// (the L-CLS guarantee, Theorem 5.8).
  Labeling Classify(const Database& eval) const;

  /// Dimension m of the implicit statistic (= number of →_k classes).
  std::size_t dimension() const { return representatives_.size(); }

  /// The class representatives e₁, …, e_m in topological order.
  const std::vector<Value>& representatives() const {
    return representatives_;
  }

  const LinearClassifier& classifier() const { return classifier_; }

  std::size_t k() const { return k_; }

 private:
  GhwClassifier(std::shared_ptr<const TrainingDatabase> training,
                std::size_t k, std::vector<Value> representatives,
                LinearClassifier classifier)
      : training_(std::move(training)),
        k_(k),
        representatives_(std::move(representatives)),
        classifier_(std::move(classifier)) {}

  std::shared_ptr<const TrainingDatabase> training_;
  std::size_t k_;
  std::vector<Value> representatives_;
  LinearClassifier classifier_;
};

/// Result of the Algorithm 2 relabeling (Theorem 7.4).
struct GhwRelabelResult {
  Labeling relabeled;          ///< λ': majority label per →_k class.
  std::size_t disagreement;    ///< |{e : λ(e) ≠ λ'(e)}| — provably minimal.
};

/// Algorithm 2 (paper, Section 7.2): computes the GHW(k)-separable
/// labeling λ' minimizing disagreement with λ, in polynomial time.
GhwRelabelResult GhwOptimalRelabel(const TrainingDatabase& training,
                                   std::size_t k);

/// GHW(k)-ApxSep (Corollary 7.5): is (D, λ) GHW(k)-separable with error ε?
bool DecideGhwApxSep(const TrainingDatabase& training, std::size_t k,
                     double epsilon);

/// GHW(k)-ApxCls (Corollary 7.5): relabels optimally, then classifies the
/// evaluation database per Algorithm 1. Returns nullopt if (D, λ) is not
/// GHW(k)-separable with error ε.
std::optional<Labeling> GhwApxClassify(
    std::shared_ptr<const TrainingDatabase> training, std::size_t k,
    double epsilon, const Database& eval);

}  // namespace featsep

#endif  // FEATSEP_CORE_GHW_SEPARABILITY_H_
