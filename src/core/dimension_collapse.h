#ifndef FEATSEP_CORE_DIMENSION_COLLAPSE_H_
#define FEATSEP_CORE_DIMENSION_COLLAPSE_H_

#include <cstddef>
#include <optional>
#include <utility>
#include <vector>

#include "relational/database.h"

namespace featsep {

/// A family of entity subsets of one database, each sorted ascending.
using EntitySetFamily = std::vector<std::vector<Value>>;

/// The CQ-definable entity sets of D: { q(D) : q a unary feature CQ }.
///
/// On a finite database these are computable exactly: every q(D) is an
/// up-set of the hom preorder e ⊑ e' ⟺ (D,e) → (D,e'), and
/// q(D) = q_S(D) for S = q(D) where q_S is the canonical product query of
/// the pointed databases {(D,s) : s ∈ S}. So the nonempty definable sets
/// are exactly { up-closure of ∏_{s∈S}(D,s) : ∅ ≠ S ⊆ η(D) }. The empty
/// set is definable iff some CQ evaluates to ∅ on D; this is detected via
/// unsatisfiable atom patterns (all-equal tuples per relation), which
/// covers the workloads here — see the .cc for the caveat.
///
/// Exponential in |η(D)| (2^n products, each up to |D|^|S| facts):
/// intended for the small witness databases of Section 8. CHECK-fails
/// beyond `max_product_facts` per product.
EntitySetFamily CqDefinableEntitySets(const Database& db,
                                      std::size_t max_product_facts = 500000);

/// The FO-definable entity sets of D: all unions of automorphism orbits of
/// entities (every FO output is orbit-closed; every orbit is FO-definable
/// on a finite structure). Exponential in the orbit count; CHECK-fails
/// beyond 16 orbits.
EntitySetFamily FoDefinableEntitySets(const Database& db);

/// The Theorem 8.4 condition, instantiated on one database: is
/// X := family ∪ { η(D) \ S : S ∈ family } closed under intersection?
/// Returns nullopt when closed; otherwise a witness pair (A, B) from X
/// with A ∩ B ∉ X. A language whose definable-set family fails this on
/// some database cannot have the dimension-collapse property.
std::optional<std::pair<std::vector<Value>, std::vector<Value>>>
FindIntersectionClosureViolation(const EntitySetFamily& family,
                                 const std::vector<Value>& entities);

/// Proposition 8.6 helper: true iff the family is *linear* (totally
/// ordered by inclusion). A language realizing arbitrarily long linear
/// definable-set chains has the unbounded-dimension property.
bool IsLinearFamily(const EntitySetFamily& family);

}  // namespace featsep

#endif  // FEATSEP_CORE_DIMENSION_COLLAPSE_H_
