#ifndef FEATSEP_CORE_SEPARABILITY_H_
#define FEATSEP_CORE_SEPARABILITY_H_

#include <cstddef>
#include <optional>
#include <utility>

#include "core/statistic.h"
#include "relational/training_database.h"
#include "util/budget.h"

namespace featsep {

namespace serve {
class EvalService;
}  // namespace serve

/// Result of the general CQ-separability test (paper, Theorem 3.2 /
/// Kimelfeld–Ré): (D, λ) is CQ-separable iff no two differently-labeled
/// entities are homomorphically equivalent as pointed databases.
struct CqSepResult {
  bool separable = false;
  /// When inseparable: a differently-labeled hom-equivalent entity pair.
  std::optional<std::pair<Value, Value>> conflict;
  /// kCompleted: `separable` (and the conflict's first-in-scan-order
  /// position) is definitive. Otherwise the sweep was interrupted: a
  /// present `conflict` is still a *sound* inseparability witness (both
  /// hom directions were verified before the interruption, though it may
  /// not be the first pair in scan order); with no conflict the run is
  /// UNDECIDED and `separable == false` must not be read as an answer.
  BudgetOutcome outcome = BudgetOutcome::kCompleted;
  /// Pairs whose hom-equivalence test ran to a definitive answer.
  std::size_t pairs_checked = 0;
};

/// Options for the CQ-SEP decision procedure.
struct CqSepOptions {
  /// Worker threads fanning out the independent pairwise hom-equivalence
  /// checks: 0 = hardware concurrency, 1 = serial (the historical
  /// behavior). The decision and the reported conflict pair are identical
  /// for every setting — the sweep always reports the first conflicting
  /// pair in (positive-major) scan order.
  std::size_t num_threads = 0;
  /// Workers *inside* each homomorphism search (HomOptions::num_threads):
  /// 1 = the classic sequential kernel (default), 0 = hardware concurrency.
  /// Use > 1 when the sweep is dominated by a few hard pairs rather than by
  /// pair count — intra-instance workers multiply with `num_threads`, so
  /// keep their product near the core count. The decision is identical for
  /// every setting.
  std::size_t hom_threads = 1;
  /// Cooperative budget threaded into every pairwise hom search; nullptr =
  /// unbounded. Checked at entry (a zero/expired deadline returns
  /// immediately) and per search-tree node, so cancellation latency is
  /// bounded by a constant amount of kernel work.
  ExecutionBudget* budget = nullptr;
};

/// Decides CQ-SEP. coNP-complete (Theorem 3.2): each pairwise test is an
/// NP homomorphism search, exponential in the worst case. The pairwise
/// tests are independent and run on `options.num_threads` threads.
CqSepResult DecideCqSep(const TrainingDatabase& training,
                        const CqSepOptions& options = {});

/// Result of CQ[m]-separability with feature generation (Prop 4.1 / 4.3).
struct CqmSepResult {
  bool separable = false;
  /// When separable: a witnessing model over the enumerated CQ[m] features.
  std::optional<SeparatorModel> model;
  /// Number of feature queries enumerated (the r^m·2^{p(k)} bound of
  /// Prop 4.1 in action).
  std::size_t features_enumerated = 0;
  /// kCompleted: `separable`/`model` are definitive. Otherwise the run was
  /// interrupted (during feature evaluation or the simplex) and is
  /// UNDECIDED: `separable == false` carries no information.
  BudgetOutcome outcome = BudgetOutcome::kCompleted;
};

/// Options for the CQ[m]-SEP decision procedure.
struct CqmSepOptions {
  /// The paper's p parameter: restricts the enumerated features to CQ[m,p]
  /// (Proposition 4.3); 0 = unrestricted.
  std::size_t max_variable_occurrences = 0;
  /// When non-null, the enumerated features are evaluated through the
  /// batched serve layer — sharded over its thread pool and reused from
  /// its cache on repeated (database, m) workloads — instead of the serial
  /// per-feature sweep. The decision and model are bit-identical.
  serve::EvalService* service = nullptr;
  /// Cooperative budget threaded through feature evaluation (serial or
  /// served) and the simplex; nullptr = unbounded.
  ExecutionBudget* budget = nullptr;
};

/// Decides CQ[m]-SEP and, when separable, generates a separating
/// (statistic, classifier) pair — the constructive algorithm behind
/// Proposition 4.1; `options.max_variable_occurrences` = p restricts to
/// CQ[m,p] (Proposition 4.3). When separable, the returned model's
/// statistic is pruned to the features the classifier actually uses
/// (nonzero weight).
CqmSepResult DecideCqmSep(const TrainingDatabase& training, std::size_t m,
                          const CqmSepOptions& options);

/// Back-compat convenience overload.
CqmSepResult DecideCqmSep(const TrainingDatabase& training, std::size_t m,
                          std::size_t max_variable_occurrences = 0);

}  // namespace featsep

#endif  // FEATSEP_CORE_SEPARABILITY_H_
