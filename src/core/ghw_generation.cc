#include "core/ghw_generation.h"

#include <deque>
#include <utility>

#include "core/ghw_separability.h"
#include "cq/core.h"
#include "cq/evaluation.h"
#include "linsep/separability_lp.h"
#include "util/check.h"

namespace featsep {

ConjunctiveQuery UnravelingQuery(const Database& db, Value e, std::size_t d,
                                 const GhwGenerationOptions& options) {
  FEATSEP_CHECK(db.InDomain(e) || db.IsEntity(e));
  ConjunctiveQuery q(db.schema_ptr());
  Variable root = q.NewVariable("x");
  q.AddFreeVariable(root);

  struct Node {
    Value value;
    Variable var;
    FactIndex incoming;  // Fact we arrived through; kNoIncoming at root.
    std::size_t depth;
  };
  constexpr FactIndex kNoIncoming = static_cast<FactIndex>(-1);

  std::deque<Node> frontier;
  frontier.push_back({e, root, kNoIncoming, 0});
  std::size_t atoms = 0;
  while (!frontier.empty()) {
    Node node = frontier.front();
    frontier.pop_front();
    if (node.depth >= d) continue;
    for (FactIndex fi : db.FactsContaining(node.value)) {
      if (options.non_backtracking && fi == node.incoming) continue;
      const Fact& fact = db.fact(fi);
      // One copy per anchor position where our value occurs.
      for (std::size_t anchor = 0; anchor < fact.args.size(); ++anchor) {
        if (fact.args[anchor] != node.value) continue;
        std::vector<Variable> args(fact.args.size());
        for (std::size_t pos = 0; pos < fact.args.size(); ++pos) {
          if (pos == anchor) {
            args[pos] = node.var;
          } else {
            Variable fresh = q.NewVariable();
            args[pos] = fresh;
            frontier.push_back(
                {fact.args[pos], fresh, fi, node.depth + 1});
          }
        }
        q.AddAtom(fact.relation, std::move(args));
        FEATSEP_CHECK_LT(++atoms, options.max_unravel_atoms)
            << "unraveling exceeded max_unravel_atoms at depth " << d;
      }
    }
  }
  return q;
}

std::optional<ConjunctiveQuery> FindDistinguishingAcyclicQuery(
    const Database& db, Value e, Value e_prime,
    const GhwGenerationOptions& options) {
  for (std::size_t d = 0; d <= options.max_unravel_depth; ++d) {
    ConjunctiveQuery q = UnravelingQuery(db, e, d, options);
    CqEvaluator evaluator(q);
    // Unravelings always select their base point; verify as an invariant.
    FEATSEP_CHECK(evaluator.SelectsEntity(db, e))
        << "unraveling fails to select its base point";
    if (!evaluator.SelectsEntity(db, e_prime)) {
      if (options.minimize) {
        ConjunctiveQuery minimized = MinimizeCq(q);
        CqEvaluator check(minimized);
        FEATSEP_CHECK(check.SelectsEntity(db, e));
        FEATSEP_CHECK(!check.SelectsEntity(db, e_prime));
        return minimized;
      }
      return q;
    }
  }
  return std::nullopt;
}

ConjunctiveQuery ConjoinUnary(const std::vector<ConjunctiveQuery>& queries) {
  FEATSEP_CHECK(!queries.empty());
  ConjunctiveQuery result(queries[0].schema_ptr());
  Variable x = result.NewVariable("x");
  result.AddFreeVariable(x);
  for (const ConjunctiveQuery& q : queries) {
    FEATSEP_CHECK(q.IsUnary());
    FEATSEP_CHECK(q.schema() == result.schema());
    std::vector<Variable> rename(q.num_variables(),
                                 static_cast<Variable>(kNoValue));
    rename[q.free_variable()] = x;
    for (const CqAtom& atom : q.atoms()) {
      std::vector<Variable> args;
      args.reserve(atom.args.size());
      for (Variable v : atom.args) {
        if (rename[v] == static_cast<Variable>(kNoValue)) {
          rename[v] = result.NewVariable();
        }
        args.push_back(rename[v]);
      }
      result.AddAtom(atom.relation, std::move(args));
    }
  }
  return result;
}

std::optional<Statistic> GenerateGhw1Statistic(
    const TrainingDatabase& training, const GhwGenerationOptions& options) {
  const Database& db = training.database();
  GhwEntityStructure structure = ComputeGhwStructure(db, 1);

  // Separability precondition (Prop 5.5).
  for (const std::vector<std::size_t>& cls : structure.classes) {
    for (std::size_t i = 1; i < cls.size(); ++i) {
      if (training.label(structure.entities[cls[0]]) !=
          training.label(structure.entities[cls[i]])) {
        return std::nullopt;
      }
    }
  }

  // One feature per class representative, in topological order (Lemma 5.4):
  // q_e := ∧_{e'} q_e^{e'} where q_e^{e'} distinguishes e from e' when
  // possible and is η(x) otherwise.
  std::vector<ConjunctiveQuery> features;
  for (std::size_t cls : structure.topo_order) {
    Value e = structure.entities[structure.classes[cls][0]];
    std::vector<ConjunctiveQuery> conjuncts;
    conjuncts.push_back(ConjunctiveQuery::MakeFeatureQuery(db.schema_ptr()));
    for (std::size_t other : structure.topo_order) {
      if (other == cls) continue;
      Value e_prime = structure.entities[structure.classes[other][0]];
      std::size_t e_idx = structure.classes[cls][0];
      std::size_t other_idx = structure.classes[other][0];
      if (structure.leq[e_idx][other_idx]) continue;  // Indistinguishable.
      std::optional<ConjunctiveQuery> q =
          FindDistinguishingAcyclicQuery(db, e, e_prime, options);
      if (!q.has_value()) return std::nullopt;  // Budget exceeded.
      conjuncts.push_back(std::move(*q));
    }
    features.push_back(ConjoinUnary(conjuncts));
  }

  Statistic statistic(std::move(features));
  // Sanity: the generated statistic must separate the training data.
  TrainingCollection collection =
      MakeTrainingCollection(statistic, training);
  FEATSEP_CHECK(IsLinearlySeparable(collection))
      << "generated GHW(1) statistic fails to separate (Lemma 5.4 broken)";
  return statistic;
}

}  // namespace featsep
