#include "core/separability.h"

#include <atomic>
#include <limits>
#include <utility>
#include <vector>

#include "cq/enumeration.h"
#include "cq/homomorphism.h"
#include "linsep/separability_lp.h"
#include "util/check.h"
#include "util/parallel.h"

namespace featsep {

CqSepResult DecideCqSep(const TrainingDatabase& training,
                        const CqSepOptions& options) {
  FEATSEP_CHECK(training.IsFullyLabeled());
  const Database& db = training.database();

  // A zero/expired/cancelled budget at entry: return undecided before any
  // work, including the degenerate-case analysis.
  CqSepResult result;
  if (!RecheckBudget(options.budget)) {
    result.outcome = options.budget->outcome();
    return result;
  }

  std::vector<Value> positives = training.PositiveExamples();
  std::vector<Value> negatives = training.NegativeExamples();

  // Degenerate training sets: with no positives or no negatives there is no
  // differently-labeled pair, so the database is trivially separable (this
  // also keeps the index arithmetic below free of divisions by zero).
  if (positives.empty() || negatives.empty()) {
    result.separable = true;
    return result;
  }
  // The pair count drives the sweep's index math; make a silent wrap-around
  // on astronomically large example sets a loud error instead.
  FEATSEP_CHECK_LE(positives.size(),
                   std::numeric_limits<std::size_t>::max() / negatives.size())
      << "positive x negative pair count overflows std::size_t";

  // The pairwise hom-equivalence tests are independent; sweep them in
  // parallel, reporting the first conflicting pair in the same
  // positive-major order the serial loop used. The database's lazy domain
  // caches are internally synchronized, so workers may hit them cold.
  std::size_t pairs = positives.size() * negatives.size();
  std::atomic<std::size_t> pairs_checked{0};
  HomOptions hom_base;
  hom_base.num_threads = options.hom_threads;
  std::size_t hit = ParallelFindFirst(
      options.num_threads, pairs, [&](std::size_t index) {
        Value p = positives[index / negatives.size()];
        Value n = negatives[index % negatives.size()];
        // An interrupted test contributes "no conflict found here" to the
        // sweep; the budget outcome recorded below tells the caller the
        // all-clear is then not definitive.
        std::optional<bool> equivalent =
            TryHomEquivalent(db, {p}, db, {n}, options.budget, hom_base);
        if (!equivalent.has_value()) return false;
        pairs_checked.fetch_add(1, std::memory_order_relaxed);
        return *equivalent;
      });
  result.pairs_checked = pairs_checked.load(std::memory_order_relaxed);
  result.outcome = OutcomeOf(options.budget);
  if (hit < pairs) {
    // Both hom directions of this pair were verified, so inseparability is
    // sound even when the budget tripped elsewhere in the sweep.
    result.separable = false;
    result.conflict = std::make_pair(positives[hit / negatives.size()],
                                     negatives[hit % negatives.size()]);
    return result;
  }
  result.separable = result.outcome == BudgetOutcome::kCompleted;
  return result;
}

CqmSepResult DecideCqmSep(const TrainingDatabase& training, std::size_t m,
                          const CqmSepOptions& options) {
  FEATSEP_CHECK(training.IsFullyLabeled());
  CqmSepResult result;
  // Entry check before the (possibly exponential) feature enumeration.
  if (!RecheckBudget(options.budget)) {
    result.outcome = options.budget->outcome();
    return result;
  }
  EnumerationOptions enum_options;
  enum_options.max_variable_occurrences = options.max_variable_occurrences;
  Statistic all_features(EnumerateFeatureQueries(
      training.database().schema_ptr(), m, enum_options));

  result.features_enumerated = all_features.dimension();

  // Feature evaluation (serial or served) under the budget. An incomplete
  // matrix means the run is undecided — a separator over partially-known
  // feature vectors would be meaningless.
  PartialMatrix partial = all_features.TryMatrix(
      training.database(), options.budget, options.service);
  if (!partial.complete()) {
    result.outcome = partial.outcome;
    return result;
  }
  TrainingCollection collection;
  std::vector<Value> entities = training.Entities();
  FEATSEP_CHECK_EQ(entities.size(), partial.rows.size());
  for (std::size_t i = 0; i < entities.size(); ++i) {
    collection.emplace_back(std::move(partial.rows[i]),
                            training.label(entities[i]));
  }

  SeparatorSearch search = TryFindSeparator(collection, options.budget);
  if (search.outcome != BudgetOutcome::kCompleted) {
    result.outcome = search.outcome;
    return result;
  }
  std::optional<LinearClassifier> classifier = std::move(search.classifier);
  if (!classifier.has_value()) {
    result.separable = false;
    return result;
  }

  // Prune zero-weight features for a compact model.
  std::vector<ConjunctiveQuery> used;
  std::vector<Rational> weights;
  for (std::size_t i = 0; i < all_features.dimension(); ++i) {
    if (!classifier->weights()[i].is_zero()) {
      used.push_back(all_features.feature(i));
      weights.push_back(classifier->weights()[i]);
    }
  }
  SeparatorModel model{Statistic(std::move(used)),
                       LinearClassifier(classifier->threshold(),
                                        std::move(weights))};
  FEATSEP_CHECK_EQ(model.TrainingErrors(training), 0u)
      << "generated CQ[m] model misclassifies a training entity";
  result.separable = true;
  result.model = std::move(model);
  return result;
}

CqmSepResult DecideCqmSep(const TrainingDatabase& training, std::size_t m,
                          std::size_t max_variable_occurrences) {
  CqmSepOptions options;
  options.max_variable_occurrences = max_variable_occurrences;
  return DecideCqmSep(training, m, options);
}

}  // namespace featsep
