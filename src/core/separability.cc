#include "core/separability.h"

#include <limits>
#include <utility>
#include <vector>

#include "cq/enumeration.h"
#include "cq/homomorphism.h"
#include "linsep/separability_lp.h"
#include "util/check.h"
#include "util/parallel.h"

namespace featsep {

CqSepResult DecideCqSep(const TrainingDatabase& training,
                        const CqSepOptions& options) {
  FEATSEP_CHECK(training.IsFullyLabeled());
  const Database& db = training.database();
  std::vector<Value> positives = training.PositiveExamples();
  std::vector<Value> negatives = training.NegativeExamples();

  // Degenerate training sets: with no positives or no negatives there is no
  // differently-labeled pair, so the database is trivially separable (this
  // also keeps the index arithmetic below free of divisions by zero).
  CqSepResult result;
  if (positives.empty() || negatives.empty()) {
    result.separable = true;
    return result;
  }
  // The pair count drives the sweep's index math; make a silent wrap-around
  // on astronomically large example sets a loud error instead.
  FEATSEP_CHECK_LE(positives.size(),
                   std::numeric_limits<std::size_t>::max() / negatives.size())
      << "positive x negative pair count overflows std::size_t";

  // The pairwise hom-equivalence tests are independent; sweep them in
  // parallel, reporting the first conflicting pair in the same
  // positive-major order the serial loop used. The database's lazy domain
  // caches are internally synchronized, so workers may hit them cold.
  std::size_t pairs = positives.size() * negatives.size();
  std::size_t hit = ParallelFindFirst(
      options.num_threads, pairs, [&](std::size_t index) {
        Value p = positives[index / negatives.size()];
        Value n = negatives[index % negatives.size()];
        return HomEquivalent(db, {p}, db, {n});
      });
  if (hit < pairs) {
    result.separable = false;
    result.conflict = std::make_pair(positives[hit / negatives.size()],
                                     negatives[hit % negatives.size()]);
    return result;
  }
  result.separable = true;
  return result;
}

CqmSepResult DecideCqmSep(const TrainingDatabase& training, std::size_t m,
                          const CqmSepOptions& options) {
  FEATSEP_CHECK(training.IsFullyLabeled());
  EnumerationOptions enum_options;
  enum_options.max_variable_occurrences = options.max_variable_occurrences;
  Statistic all_features(EnumerateFeatureQueries(
      training.database().schema_ptr(), m, enum_options));

  CqmSepResult result;
  result.features_enumerated = all_features.dimension();

  TrainingCollection collection =
      MakeTrainingCollection(all_features, training, options.service);
  std::optional<LinearClassifier> classifier = FindSeparator(collection);
  if (!classifier.has_value()) {
    result.separable = false;
    return result;
  }

  // Prune zero-weight features for a compact model.
  std::vector<ConjunctiveQuery> used;
  std::vector<Rational> weights;
  for (std::size_t i = 0; i < all_features.dimension(); ++i) {
    if (!classifier->weights()[i].is_zero()) {
      used.push_back(all_features.feature(i));
      weights.push_back(classifier->weights()[i]);
    }
  }
  SeparatorModel model{Statistic(std::move(used)),
                       LinearClassifier(classifier->threshold(),
                                        std::move(weights))};
  FEATSEP_CHECK_EQ(model.TrainingErrors(training), 0u)
      << "generated CQ[m] model misclassifies a training entity";
  result.separable = true;
  result.model = std::move(model);
  return result;
}

CqmSepResult DecideCqmSep(const TrainingDatabase& training, std::size_t m,
                          std::size_t max_variable_occurrences) {
  CqmSepOptions options;
  options.max_variable_occurrences = max_variable_occurrences;
  return DecideCqmSep(training, m, options);
}

}  // namespace featsep
