#include "core/dimension_bounded.h"

#include <algorithm>
#include <set>
#include <utility>

#include "linsep/separability_lp.h"
#include "util/check.h"

namespace featsep {

namespace {

/// Canonical sign of a ±1 column: first entry forced to +1 (a feature and
/// its negation are interchangeable for linear separation — the classifier
/// flips the weight's sign).
std::vector<int> CanonicalColumn(std::vector<int> column) {
  if (!column.empty() && column[0] == -1) {
    for (int& x : column) x = -x;
  }
  return column;
}

}  // namespace

SepDimResult DecideSepDim(const TrainingDatabase& training, std::size_t ell,
                          const QbeOracle& oracle) {
  FEATSEP_CHECK(training.IsFullyLabeled());
  const Database& db = training.database();
  std::vector<Value> entities = training.Entities();
  std::size_t n = entities.size();
  FEATSEP_CHECK_LE(n, 20u)
      << "DecideSepDim enumerates 2^|entities| bipartitions "
         "(guess-and-check per Lemma 6.3); this input is too large";

  SepDimResult result;

  // Constant labelings are separable with zero features.
  bool constant = true;
  for (Value e : entities) {
    constant = constant && training.label(e) == training.label(entities[0]);
  }
  if (n == 0 || constant) {
    result.separable = true;
    return result;
  }
  if (ell == 0) {
    result.separable = false;
    return result;
  }

  // Enumerate realizable, non-constant bipartitions; dedup by canonical
  // (sign-free) column.
  struct Candidate {
    std::vector<int> column;           // Canonicalized.
    std::vector<Value> positive_set;   // The realizable orientation.
  };
  std::vector<Candidate> candidates;
  std::set<std::vector<int>> seen;
  std::uint64_t limit = 1ULL << n;
  for (std::uint64_t mask = 1; mask + 1 < limit; ++mask) {
    std::vector<Value> s_plus;
    std::vector<Value> s_minus;
    std::vector<int> column(n);
    for (std::size_t i = 0; i < n; ++i) {
      if ((mask >> i) & 1) {
        s_plus.push_back(entities[i]);
        column[i] = 1;
      } else {
        s_minus.push_back(entities[i]);
        column[i] = -1;
      }
    }
    std::vector<int> canonical = CanonicalColumn(column);
    if (seen.count(canonical) > 0) continue;
    QbeInstance instance{&db, std::move(s_plus), std::move(s_minus)};
    if (!oracle(instance)) continue;
    seen.insert(canonical);
    candidates.push_back(Candidate{std::move(canonical), instance.positives});
  }

  // Search for ≤ ℓ candidate columns whose vectors separate λ.
  std::vector<std::size_t> chosen;
  auto separable_now = [&]() {
    TrainingCollection collection;
    for (std::size_t i = 0; i < n; ++i) {
      FeatureVector v;
      for (std::size_t c : chosen) v.push_back(candidates[c].column[i]);
      collection.emplace_back(std::move(v), training.label(entities[i]));
    }
    return IsLinearlySeparable(collection);
  };
  auto dfs = [&](auto&& self, std::size_t next) -> bool {
    if (separable_now()) return true;
    if (chosen.size() == ell) return false;
    for (std::size_t c = next; c < candidates.size(); ++c) {
      chosen.push_back(c);
      if (self(self, c + 1)) return true;
      chosen.pop_back();
    }
    return false;
  };
  if (dfs(dfs, 0)) {
    result.separable = true;
    for (std::size_t c : chosen) {
      result.feature_positive_sets.push_back(candidates[c].positive_set);
    }
  }
  return result;
}

QbeOracle MakeCqQbeOracle(const QbeOptions& options) {
  return [options](const QbeInstance& instance) {
    return SolveCqQbe(instance, options).exists;
  };
}

QbeOracle MakeGhwQbeOracle(std::size_t k, const QbeOptions& options) {
  return [k, options](const QbeInstance& instance) {
    return SolveGhwQbe(instance, k, options).exists;
  };
}

QbeOracle MakeCqmQbeOracle(std::size_t m,
                           std::size_t max_variable_occurrences) {
  return [m, max_variable_occurrences](const QbeInstance& instance) {
    return SolveCqmQbe(instance, m, max_variable_occurrences).exists;
  };
}

std::optional<SeparatorModel> BuildSepDimModel(
    const TrainingDatabase& training, const SepDimResult& result,
    const QbeExplainer& explainer) {
  FEATSEP_CHECK(result.separable)
      << "BuildSepDimModel requires a positive SepDimResult";
  const Database& db = training.database();
  std::vector<Value> entities = training.Entities();

  std::vector<ConjunctiveQuery> features;
  for (const std::vector<Value>& positives : result.feature_positive_sets) {
    std::set<Value> positive_set(positives.begin(), positives.end());
    QbeInstance instance;
    instance.db = &db;
    for (Value e : entities) {
      if (positive_set.count(e) > 0) {
        instance.positives.push_back(e);
      } else {
        instance.negatives.push_back(e);
      }
    }
    QbeResult qbe = explainer(instance);
    FEATSEP_CHECK(qbe.exists)
        << "recorded bipartition no longer QBE-solvable";
    if (!qbe.explanation.has_value()) return std::nullopt;
    features.push_back(std::move(*qbe.explanation));
  }

  Statistic statistic(std::move(features));
  TrainingCollection collection = MakeTrainingCollection(statistic, training);
  std::optional<LinearClassifier> classifier = FindSeparator(collection);
  FEATSEP_CHECK(classifier.has_value())
      << "materialized SepDim statistic fails to separate";
  SeparatorModel model{std::move(statistic), std::move(*classifier)};
  FEATSEP_CHECK_EQ(model.TrainingErrors(training), 0u);
  return model;
}

std::shared_ptr<TrainingDatabase> ReduceQbeToSepEll(
    const Database& db, const std::vector<Value>& s_plus, std::size_t ell) {
  FEATSEP_CHECK_GE(ell, 1u);
  FEATSEP_CHECK(!s_plus.empty());

  // Extended schema: σ's relations (same ids), then η, then κ₁..κ_{ℓ−1}.
  Schema extended;
  for (RelationId r = 0; r < db.schema().size(); ++r) {
    extended.AddRelation(db.schema().name(r), db.schema().arity(r));
  }
  RelationId eta = extended.AddRelation("Eta_sep", 1);
  extended.set_entity_relation(eta);
  std::vector<RelationId> kappa;
  for (std::size_t i = 1; i < ell; ++i) {
    kappa.push_back(
        extended.AddRelation("Kappa" + std::to_string(i), 1));
  }
  auto schema = std::make_shared<const Schema>(std::move(extended));

  auto d_prime = std::make_shared<Database>(schema);
  // Copy D's values (ids preserved) and facts (relation ids preserved).
  for (Value v = 0; v < db.num_values(); ++v) {
    Value copy = d_prime->Intern(db.value_name(v));
    FEATSEP_CHECK_EQ(copy, v);
  }
  for (const Fact& fact : db.facts()) {
    d_prime->AddFact(fact.relation, fact.args);
  }
  // Fresh constants c⁻, c₁..c_{ℓ−1} with κᵢ(cᵢ).
  Value c_minus = d_prime->Intern("c_minus");
  std::vector<Value> c(ell - 1);
  for (std::size_t i = 0; i + 1 < ell; ++i) {
    c[i] = d_prime->Intern("c" + std::to_string(i + 1));
    d_prime->AddFact(kappa[i], {c[i]});
  }
  // η(D') = dom(D) ∪ {c⁻, c₁..}: every value is an entity.
  for (Value v : db.domain()) d_prime->AddFact(eta, {v});
  d_prime->AddFact(eta, {c_minus});
  for (Value ci : c) d_prime->AddFact(eta, {ci});

  auto training = std::make_shared<TrainingDatabase>(d_prime);
  std::set<Value> positive_set(s_plus.begin(), s_plus.end());
  for (Value v : db.domain()) {
    training->SetLabel(v, positive_set.count(v) > 0 ? kPositive : kNegative);
  }
  training->SetLabel(c_minus, kNegative);
  for (Value ci : c) training->SetLabel(ci, kPositive);
  return training;
}

}  // namespace featsep
