#ifndef FEATSEP_CORE_GHW_GENERATION_H_
#define FEATSEP_CORE_GHW_GENERATION_H_

#include <cstddef>
#include <optional>

#include "core/statistic.h"
#include "cq/cq.h"
#include "relational/database.h"
#include "relational/training_database.h"

namespace featsep {

/// Options for the exponential-time GHW(k) feature generation (Prop 5.6).
struct GhwGenerationOptions {
  /// Depth budget for the tree-unraveling search (the per-pair
  /// distinguishing queries grow with this depth; Theorem 5.7 shows they
  /// must be allowed to grow exponentially).
  std::size_t max_unravel_depth = 64;
  /// Cap on the atom count of a single unraveling (CHECK beyond).
  std::size_t max_unravel_atoms = 2000000;
  /// Non-backtracking unravelings only (smaller queries; still complete
  /// for the workloads in this repository — see DESIGN.md §3 notes).
  bool non_backtracking = true;
  /// Run core minimization on each distinguishing query (exponential but
  /// drastically shrinks the output).
  bool minimize = true;
};

/// Searches for a GHW(1) (acyclic) feature query q with e ∈ q(D) and
/// e' ∉ q(D), via depth-increasing tree unravelings of (D, e). Soundness is
/// unconditional: any returned query is verified to select e and exclude
/// e'. Completeness holds up to the depth budget — by Prop 5.2 a
/// distinguishing acyclic query exists iff NOT (D, e) →₁ (D, e'), and the
/// unravelings of (D, e) are universal among the acyclic queries selecting
/// e, so deep enough unravelings find it (exponentially deep in |D| in the
/// worst case; this is the Prop 5.6 exponential cost made explicit).
/// Returns nullopt if no distinguishing query exists within the budget.
std::optional<ConjunctiveQuery> FindDistinguishingAcyclicQuery(
    const Database& db, Value e, Value e_prime,
    const GhwGenerationOptions& options = {});

/// The depth-d tree unraveling of (D, e) as a unary feature query: the
/// universal acyclic query of radius d selecting e.
ConjunctiveQuery UnravelingQuery(const Database& db, Value e, std::size_t d,
                                 const GhwGenerationOptions& options = {});

/// Materializes a GHW(1)-separating statistic for a GHW(1)-separable
/// training database, following Lemma 5.4: one feature q_e per
/// →₁-equivalence class, each the conjunction of pairwise distinguishing
/// queries. Exponential time and output size (Prop 5.6 / Theorem 5.7).
/// Returns nullopt if the training database is not GHW(1)-separable or a
/// distinguishing query exceeds the budget.
std::optional<Statistic> GenerateGhw1Statistic(
    const TrainingDatabase& training,
    const GhwGenerationOptions& options = {});

/// Conjunction of unary feature queries: glues the free variables together
/// and unions the atom sets (GHW(k) is closed under this operation —
/// Lemma 5.4).
ConjunctiveQuery ConjoinUnary(const std::vector<ConjunctiveQuery>& queries);

}  // namespace featsep

#endif  // FEATSEP_CORE_GHW_GENERATION_H_
