#include "core/ghw_separability.h"

#include <algorithm>
#include <utility>

#include "covergame/cover_game.h"
#include "linsep/separability_lp.h"
#include "relational/database_ops.h"
#include "util/check.h"

namespace featsep {

GhwEntityStructure ComputeGhwStructure(const Database& db, std::size_t k) {
  GhwEntityStructure structure;
  structure.entities = db.Entities();
  structure.leq = CoverPreorder(db, structure.entities, k);
  std::size_t n = structure.entities.size();

  // Equivalence classes of (≤ ∩ ≥).
  structure.class_of.assign(n, static_cast<std::size_t>(-1));
  for (std::size_t i = 0; i < n; ++i) {
    if (structure.class_of[i] != static_cast<std::size_t>(-1)) continue;
    std::size_t cls = structure.classes.size();
    structure.classes.emplace_back();
    for (std::size_t j = i; j < n; ++j) {
      if (structure.class_of[j] == static_cast<std::size_t>(-1) &&
          structure.leq[i][j] && structure.leq[j][i]) {
        structure.class_of[j] = cls;
        structure.classes[cls].push_back(j);
      }
    }
  }

  // Topological sort of the class partial order (A before B if A ≤ B):
  // Kahn's algorithm over representative comparisons.
  std::size_t c = structure.classes.size();
  auto class_leq = [&](std::size_t a, std::size_t b) {
    return structure.leq[structure.classes[a][0]][structure.classes[b][0]];
  };
  std::vector<std::size_t> indegree(c, 0);
  for (std::size_t a = 0; a < c; ++a) {
    for (std::size_t b = 0; b < c; ++b) {
      if (a != b && class_leq(a, b)) ++indegree[b];
    }
  }
  std::vector<std::size_t> queue;
  for (std::size_t a = 0; a < c; ++a) {
    if (indegree[a] == 0) queue.push_back(a);
  }
  while (!queue.empty()) {
    std::size_t a = queue.back();
    queue.pop_back();
    structure.topo_order.push_back(a);
    for (std::size_t b = 0; b < c; ++b) {
      if (b != a && class_leq(a, b) && --indegree[b] == 0) {
        queue.push_back(b);
      }
    }
  }
  FEATSEP_CHECK_EQ(structure.topo_order.size(), c)
      << "cycle among distinct →_k classes (preorder reasoning broken)";
  return structure;
}

GhwSepResult DecideGhwSep(const TrainingDatabase& training, std::size_t k) {
  FEATSEP_CHECK(training.IsFullyLabeled());
  GhwEntityStructure structure =
      ComputeGhwStructure(training.database(), k);
  GhwSepResult result;
  for (const std::vector<std::size_t>& cls : structure.classes) {
    for (std::size_t i = 1; i < cls.size(); ++i) {
      Value first = structure.entities[cls[0]];
      Value other = structure.entities[cls[i]];
      if (training.label(first) != training.label(other)) {
        result.separable = false;
        result.conflict = std::make_pair(first, other);
        return result;
      }
    }
  }
  result.separable = true;
  return result;
}

std::optional<GhwClassifier> GhwClassifier::Train(
    std::shared_ptr<const TrainingDatabase> training, std::size_t k) {
  FEATSEP_CHECK(training != nullptr);
  FEATSEP_CHECK(training->IsFullyLabeled());
  const Database& db = training->database();
  GhwEntityStructure structure = ComputeGhwStructure(db, k);

  // Separability check (Prop 5.5) and per-class labels.
  for (const std::vector<std::size_t>& cls : structure.classes) {
    for (std::size_t i = 1; i < cls.size(); ++i) {
      if (training->label(structure.entities[cls[0]]) !=
          training->label(structure.entities[cls[i]])) {
        return std::nullopt;
      }
    }
  }

  // Representatives e₁..e_m in topological order; the implicit feature
  // q_{e_i} selects e iff (D, e_i) →_k (D, e), i.e., iff e_i ≤ e.
  std::vector<Value> representatives;
  std::vector<std::size_t> rep_index;  // Entity index of each representative.
  for (std::size_t cls : structure.topo_order) {
    rep_index.push_back(structure.classes[cls][0]);
    representatives.push_back(structure.entities[structure.classes[cls][0]]);
  }

  // Training vectors from the preorder; one distinct vector per class with
  // the triangular pattern of Lemma 5.4, hence separable by Lemma 5.4.
  TrainingCollection collection;
  for (std::size_t i = 0; i < structure.entities.size(); ++i) {
    FeatureVector vector;
    vector.reserve(representatives.size());
    for (std::size_t j : rep_index) {
      vector.push_back(structure.leq[j][i] ? 1 : -1);
    }
    collection.emplace_back(std::move(vector),
                            training->label(structure.entities[i]));
  }
  std::optional<LinearClassifier> classifier = FindSeparator(collection);
  FEATSEP_CHECK(classifier.has_value())
      << "Lemma 5.4 violated: class-consistent labeling not separable";

  return GhwClassifier(std::move(training), k, std::move(representatives),
                       std::move(*classifier));
}

Labeling GhwClassifier::Classify(const Database& eval) const {
  const Database& train_db = training_->database();
  FEATSEP_CHECK(train_db.schema() == eval.schema())
      << "evaluation database schema differs from the training schema";
  CoverGameSolver solver(train_db, eval, k_);

  Labeling labeling;
  for (Value f : eval.Entities()) {
    FeatureVector vector;
    vector.reserve(representatives_.size());
    for (Value rep : representatives_) {
      // 1_{q_{e_i}(D')}(f) = [(D, e_i) →_k (D', f)]  (Algorithm 1, line 4).
      vector.push_back(solver.Decide({rep}, {f}) ? 1 : -1);
    }
    labeling.Set(f, classifier_.Classify(vector));
  }
  return labeling;
}

GhwRelabelResult GhwOptimalRelabel(const TrainingDatabase& training,
                                   std::size_t k) {
  FEATSEP_CHECK(training.IsFullyLabeled());
  GhwEntityStructure structure =
      ComputeGhwStructure(training.database(), k);
  GhwRelabelResult result;
  result.disagreement = 0;
  for (const std::vector<std::size_t>& cls : structure.classes) {
    // Majority label of the class (ties go positive: Σλ ≥ 0, Algorithm 2).
    long long sum = 0;
    for (std::size_t i : cls) {
      sum += training.label(structure.entities[i]);
    }
    Label majority = sum >= 0 ? kPositive : kNegative;
    for (std::size_t i : cls) {
      Value e = structure.entities[i];
      result.relabeled.Set(e, majority);
      if (training.label(e) != majority) ++result.disagreement;
    }
  }
  return result;
}

bool DecideGhwApxSep(const TrainingDatabase& training, std::size_t k,
                     double epsilon) {
  FEATSEP_CHECK_GE(epsilon, 0.0);
  FEATSEP_CHECK_LT(epsilon, 1.0);
  GhwRelabelResult relabel = GhwOptimalRelabel(training, k);
  double budget =
      epsilon * static_cast<double>(training.Entities().size());
  return static_cast<double>(relabel.disagreement) <= budget;
}

std::optional<Labeling> GhwApxClassify(
    std::shared_ptr<const TrainingDatabase> training, std::size_t k,
    double epsilon, const Database& eval) {
  FEATSEP_CHECK(training != nullptr);
  if (!DecideGhwApxSep(*training, k, epsilon)) return std::nullopt;
  GhwRelabelResult relabel = GhwOptimalRelabel(*training, k);

  // Train on (D, λ'): λ' is GHW(k)-separable by construction (Thm 7.4).
  // Copy preserves value ids, so the labels transfer directly.
  auto relabeled = std::make_shared<TrainingDatabase>(
      std::make_shared<Database>(Copy(training->database())));
  for (Value e : training->Entities()) {
    relabeled->SetLabel(e, relabel.relabeled.Get(e));
  }
  std::optional<GhwClassifier> classifier =
      GhwClassifier::Train(relabeled, k);
  FEATSEP_CHECK(classifier.has_value());
  return classifier->Classify(eval);
}

}  // namespace featsep
