#ifndef FEATSEP_CORE_FO_SEPARABILITY_H_
#define FEATSEP_CORE_FO_SEPARABILITY_H_

#include <optional>
#include <utility>

#include "relational/training_database.h"

namespace featsep {

/// Result of the FO-separability test (paper, Section 8).
struct FoSepResult {
  bool separable = false;
  /// When inseparable: two differently-labeled entities whose pointed
  /// databases are isomorphic (hence FO-indistinguishable).
  std::optional<std::pair<Value, Value>> conflict;
};

/// Decides FO-SEP: (D, λ) is FO-separable iff no two differently-labeled
/// entities e, e' have (D, e) ≅ (D, e'). FO has the dimension-collapse
/// property (Prop 8.1), so this also decides FO-SEP[ℓ] for every ℓ ≥ 1;
/// the complexity matches FO-QBE, which is GI-complete (Corollary 8.2) —
/// the pairwise tests below are isomorphism tests.
FoSepResult DecideFoSep(const TrainingDatabase& training);

}  // namespace featsep

#endif  // FEATSEP_CORE_FO_SEPARABILITY_H_
