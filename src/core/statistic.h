#ifndef FEATSEP_CORE_STATISTIC_H_
#define FEATSEP_CORE_STATISTIC_H_

#include <cstddef>
#include <string>
#include <vector>

#include "cq/cq.h"
#include "linsep/linear_classifier.h"
#include "linsep/separability_lp.h"
#include "relational/database.h"
#include "relational/training_database.h"
#include "util/budget.h"

namespace featsep {

namespace serve {
class EvalService;
}  // namespace serve

/// A feature matrix whose computation may have been interrupted by an
/// ExecutionBudget: the shape is always complete, but only cells whose
/// validity bit is set carry definitive answers.
struct PartialMatrix {
  /// kCompleted iff the computation ran to the end; then every cell is
  /// valid and `rows` equals Statistic::Matrix bit for bit.
  BudgetOutcome outcome = BudgetOutcome::kCompleted;
  /// Entity-major rows (db.Entities() order), dimension() columns. Invalid
  /// cells hold the placeholder -1 and must not be read as answers.
  std::vector<FeatureVector> rows;
  /// valid[i][j] != 0 iff rows[i][j] is the definitive Π^D(eᵢ)[j].
  std::vector<std::vector<char>> valid;

  bool complete() const { return outcome == BudgetOutcome::kCompleted; }
};

/// A statistic Π = (q₁, …, qₙ): a sequence of feature queries mapping each
/// entity e of a database D to the vector Π^D(e) ∈ {1, -1}ⁿ of feature
/// indicators (paper, Section 3).
///
/// The evaluation entry points take an optional serve::EvalService — the
/// batched, caching, sharded evaluation path (DESIGN.md §8). With
/// `service == nullptr` (the default) they evaluate serially in the calling
/// thread, feature by feature, exactly as before; with a service they
/// produce bit-identical results through its cache and thread pool.
class Statistic {
 public:
  Statistic() = default;
  explicit Statistic(std::vector<ConjunctiveQuery> features);

  std::size_t dimension() const { return features_.size(); }
  const std::vector<ConjunctiveQuery>& features() const { return features_; }
  const ConjunctiveQuery& feature(std::size_t i) const;

  /// Π^D(e) for one entity. The serve path requires `entity` ∈ η(D).
  FeatureVector Vector(const Database& db, Value entity,
                       serve::EvalService* service = nullptr) const;

  /// Π^D(e) for all entities of D, in the order of db.Entities().
  std::vector<FeatureVector> Matrix(const Database& db,
                                    serve::EvalService* service = nullptr)
      const;

  /// Budgeted Matrix: `budget` (nullptr = unbounded) is threaded into every
  /// per-cell homomorphism search and an interrupted computation returns the
  /// best-so-far partial matrix instead of blocking until done. Validity
  /// granularity is per cell on the serial path and per feature column on
  /// the serve path (the service's cached answer sets are all-or-nothing).
  /// A completed call returns exactly Matrix()'s values, all valid.
  PartialMatrix TryMatrix(const Database& db, ExecutionBudget* budget,
                          serve::EvalService* service = nullptr) const;

  /// Total number of atoms across the feature queries (size measure used by
  /// the Theorem 5.7 / 6.7 blowup experiments).
  std::size_t TotalAtoms() const;

  std::string ToString() const;

 private:
  std::vector<ConjunctiveQuery> features_;
};

/// A trained separator: a statistic plus a linear classifier, applicable to
/// any database over the same schema.
struct SeparatorModel {
  Statistic statistic;
  LinearClassifier classifier;

  /// Labels every entity of `db` by Λ(Π^D(e)) — the classification task
  /// (paper, Section 5.3 / L-CLS).
  Labeling Apply(const Database& db,
                 serve::EvalService* service = nullptr) const;

  /// Number of entities of the training database the model mislabels.
  std::size_t TrainingErrors(const TrainingDatabase& training) const;
};

/// The training collection (Π^D(e), λ(e)) for all entities of the training
/// database, in the order of Entities().
TrainingCollection MakeTrainingCollection(const Statistic& statistic,
                                          const TrainingDatabase& training,
                                          serve::EvalService* service =
                                              nullptr);

}  // namespace featsep

#endif  // FEATSEP_CORE_STATISTIC_H_
