#ifndef FEATSEP_WORKLOAD_MOLECULES_H_
#define FEATSEP_WORKLOAD_MOLECULES_H_

#include <cstdint>
#include <memory>

#include "relational/training_database.h"

namespace featsep {

/// A propositionalization-style workload in the spirit of the paper's
/// intro motivation ([24, 29]: feature generation over multi-relational
/// data by small joins). Entities are "molecules"; the structure is
///   HasAtom(molecule, atom), Bond(atom, atom),
///   Carbon(atom), Nitrogen(atom), Oxygen(atom).
/// A molecule is labeled +1 iff it contains a nitrogen–oxygen bond (the
/// planted pharmacophore motif). The motif is a 4-atom conjunctive
/// feature:
///   q(x) :- Eta(x), HasAtom(x, a), Nitrogen(a), Bond(a, b), Oxygen(b)
/// so CQ[4]-separability holds by construction (smaller atom budgets
/// typically fail: three atoms cannot pin both element types on a bonded
/// pair, though accidental correlations can rescue small random samples).
struct MoleculeParams {
  std::size_t num_molecules = 8;
  std::size_t atoms_per_molecule = 5;
  std::size_t bonds_per_molecule = 5;
  std::uint64_t seed = 1;
};

std::shared_ptr<const Schema> MoleculeSchema();

std::shared_ptr<TrainingDatabase> MakeMoleculeDataset(
    const MoleculeParams& params);

}  // namespace featsep

#endif  // FEATSEP_WORKLOAD_MOLECULES_H_
