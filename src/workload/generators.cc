#include "workload/generators.h"

#include <string>

#include "cq/cq.h"
#include "util/check.h"

namespace featsep {

namespace {

std::vector<Value> BuildPath(Database& db, const std::string& prefix,
                             std::size_t edges) {
  RelationId e = db.schema().FindRelation("E");
  std::vector<Value> nodes;
  for (std::size_t i = 0; i <= edges; ++i) {
    nodes.push_back(db.Intern(prefix + std::to_string(i)));
  }
  for (std::size_t i = 0; i < edges; ++i) {
    db.AddFact(e, {nodes[i], nodes[i + 1]});
  }
  return nodes;
}

}  // namespace

std::shared_ptr<const Schema> GraphWorkloadSchema() {
  Schema schema;
  RelationId eta = schema.AddRelation("Eta", 1);
  schema.AddRelation("E", 2);
  schema.set_entity_relation(eta);
  return std::make_shared<const Schema>(std::move(schema));
}

std::shared_ptr<TrainingDatabase> PathLengthFamily(
    const std::vector<std::size_t>& lengths,
    std::size_t positive_threshold) {
  auto db = std::make_shared<Database>(GraphWorkloadSchema());
  auto training = std::make_shared<TrainingDatabase>(db);
  RelationId eta = db->schema().entity_relation();
  for (std::size_t i = 0; i < lengths.size(); ++i) {
    std::string prefix = "p" + std::to_string(i) + "_";
    std::vector<Value> nodes = BuildPath(*db, prefix, lengths[i]);
    db->AddFact(eta, {nodes[0]});
    training->SetLabel(nodes[0], lengths[i] >= positive_threshold
                                     ? kPositive
                                     : kNegative);
  }
  return training;
}

std::shared_ptr<TrainingDatabase> CycleTailFamily(
    const std::vector<std::size_t>& lengths,
    const std::vector<Label>& labels) {
  FEATSEP_CHECK_EQ(lengths.size(), labels.size());
  auto db = std::make_shared<Database>(GraphWorkloadSchema());
  auto training = std::make_shared<TrainingDatabase>(db);
  RelationId eta = db->schema().entity_relation();
  RelationId e = db->schema().FindRelation("E");
  for (std::size_t i = 0; i < lengths.size(); ++i) {
    FEATSEP_CHECK_GE(lengths[i], 1u);
    std::string prefix = "c" + std::to_string(i) + "_";
    std::vector<Value> nodes;
    for (std::size_t j = 0; j < lengths[i]; ++j) {
      nodes.push_back(db->Intern(prefix + std::to_string(j)));
    }
    for (std::size_t j = 0; j < lengths[i]; ++j) {
      db->AddFact(e, {nodes[j], nodes[(j + 1) % lengths[i]]});
    }
    Value entity = db->Intern(prefix + "e");
    db->AddFact(e, {entity, nodes[0]});
    db->AddFact(eta, {entity});
    training->SetLabel(entity, labels[i]);
  }
  return training;
}

std::shared_ptr<TrainingDatabase> RandomPlantedGraph(
    const RandomGraphParams& params) {
  FEATSEP_CHECK_GE(params.planted_path_length, 1u);
  WorkloadRng rng(params.seed);
  auto db = std::make_shared<Database>(GraphWorkloadSchema());
  auto training = std::make_shared<TrainingDatabase>(db);
  RelationId eta = db->schema().entity_relation();
  RelationId e = db->schema().FindRelation("E");

  // Background structure (kept acyclic by forward-only edges so it cannot
  // accidentally extend a planted short path into a long one).
  std::vector<Value> background;
  for (std::size_t i = 0; i < params.num_background_nodes; ++i) {
    background.push_back(db->Intern("bg" + std::to_string(i)));
  }
  for (std::size_t i = 0;
       i < params.num_background_edges && background.size() >= 2; ++i) {
    std::size_t a = rng.Below(background.size());
    std::size_t b = rng.Below(background.size());
    if (a == b) continue;
    db->AddFact(e, {background[std::min(a, b)], background[std::max(a, b)]});
  }

  for (std::size_t i = 0; i < params.num_entities; ++i) {
    bool positive = rng.Next() % 2 == 0;
    std::size_t length = positive ? params.planted_path_length
                                  : rng.Below(params.planted_path_length);
    std::string prefix = "e" + std::to_string(i) + "_";
    std::vector<Value> nodes = BuildPath(*db, prefix, length);
    db->AddFact(eta, {nodes[0]});
    Label label = positive ? kPositive : kNegative;
    if (params.label_noise > 0.0 && rng.Uniform() < params.label_noise) {
      label = -label;
    }
    training->SetLabel(nodes[0], label);
  }
  return training;
}

ConjunctiveQuery RandomFeatureQuery(std::shared_ptr<const Schema> schema,
                                    std::size_t atoms, std::uint64_t seed) {
  FEATSEP_CHECK(schema->has_entity_relation());
  WorkloadRng rng(seed * 2654435761ULL + 17);
  ConjunctiveQuery q = ConjunctiveQuery::MakeFeatureQuery(schema);
  std::vector<Variable> pool = {q.free_variable()};
  for (std::size_t i = 0; i < atoms; ++i) {
    RelationId rel = static_cast<RelationId>(rng.Below(schema->size()));
    std::vector<Variable> args;
    for (std::size_t pos = 0; pos < schema->arity(rel); ++pos) {
      // Bias 2:1 toward reusing an existing variable.
      if (rng.Below(3) == 0 || pool.empty()) {
        pool.push_back(q.NewVariable());
        args.push_back(pool.back());
      } else {
        args.push_back(pool[rng.Below(pool.size())]);
      }
    }
    q.AddAtom(rel, std::move(args));
  }
  return q;
}

}  // namespace featsep
