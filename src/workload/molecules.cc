#include "workload/molecules.h"

#include <string>
#include <vector>

#include "util/check.h"

namespace featsep {

namespace {

class Rng {
 public:
  explicit Rng(std::uint64_t seed) : state_(seed == 0 ? 0x13198a2e : seed) {}
  std::uint64_t Next() {
    state_ ^= state_ >> 12;
    state_ ^= state_ << 25;
    state_ ^= state_ >> 27;
    return state_ * 0x2545f4914f6cdd1dULL;
  }
  std::size_t Below(std::size_t n) { return Next() % n; }

 private:
  std::uint64_t state_;
};

}  // namespace

std::shared_ptr<const Schema> MoleculeSchema() {
  Schema schema;
  RelationId eta = schema.AddRelation("Eta", 1);
  schema.set_entity_relation(eta);
  schema.AddRelation("HasAtom", 2);
  schema.AddRelation("Bond", 2);
  schema.AddRelation("Carbon", 1);
  schema.AddRelation("Nitrogen", 1);
  schema.AddRelation("Oxygen", 1);
  return std::make_shared<const Schema>(std::move(schema));
}

std::shared_ptr<TrainingDatabase> MakeMoleculeDataset(
    const MoleculeParams& params) {
  FEATSEP_CHECK_GE(params.atoms_per_molecule, 2u);
  Rng rng(params.seed);
  auto db = std::make_shared<Database>(MoleculeSchema());
  auto training = std::make_shared<TrainingDatabase>(db);
  const Schema& schema = db->schema();
  RelationId eta = schema.entity_relation();
  RelationId has_atom = schema.FindRelation("HasAtom");
  RelationId bond = schema.FindRelation("Bond");
  RelationId element[3] = {schema.FindRelation("Carbon"),
                           schema.FindRelation("Nitrogen"),
                           schema.FindRelation("Oxygen")};

  for (std::size_t m = 0; m < params.num_molecules; ++m) {
    std::string mol_name = "mol" + std::to_string(m);
    Value mol = db->Intern(mol_name);
    db->AddFact(eta, {mol});

    std::vector<Value> atoms;
    std::vector<std::size_t> kinds;
    for (std::size_t a = 0; a < params.atoms_per_molecule; ++a) {
      Value atom = db->Intern(mol_name + "_a" + std::to_string(a));
      std::size_t kind = rng.Below(3);
      atoms.push_back(atom);
      kinds.push_back(kind);
      db->AddFact(has_atom, {mol, atom});
      db->AddFact(element[kind], {atom});
    }
    bool has_no_bond = false;
    for (std::size_t b = 0; b < params.bonds_per_molecule; ++b) {
      std::size_t i = rng.Below(atoms.size());
      std::size_t j = rng.Below(atoms.size());
      if (i == j) continue;
      db->AddFact(bond, {atoms[i], atoms[j]});
      // The planted motif: Nitrogen –Bond→ Oxygen.
      if (kinds[i] == 1 && kinds[j] == 2) has_no_bond = true;
    }
    training->SetLabel(mol, has_no_bond ? kPositive : kNegative);
  }
  return training;
}

}  // namespace featsep
