#ifndef FEATSEP_WORKLOAD_VERTEX_COVER_H_
#define FEATSEP_WORKLOAD_VERTEX_COVER_H_

#include <cstddef>
#include <memory>
#include <utility>
#include <vector>

#include "relational/training_database.h"

namespace featsep {

/// The Proposition 6.9 reduction: CQ[m]-SEP[*] is NP-complete because
/// choosing ℓ single-atom features is a covering problem. Given a graph
/// G = (V, E), this builds a training database over the schema
/// {η, P_v : v ∈ V} (one fresh unary symbol per vertex — the schema grows
/// with the input, which is exactly why the problem is only FPT in the
/// schema size, Prop 6.8):
///   - one positive entity x_e per edge e = (u, v), with P_u(x_e), P_v(x_e);
///   - one negative entity y with no facts besides η(y).
/// Then (D, λ) is CQ[1]-separable by a statistic of dimension ≤ ℓ iff G has
/// a vertex cover of size ≤ ℓ: each feature distinguishing some x_e from y
/// must be a P_v(x) with v incident to e, so the chosen vertices cover E;
/// conversely a cover yields the OR-classifier over its P_v(x) features.
struct VertexCoverInstance {
  std::shared_ptr<TrainingDatabase> training;
  std::vector<std::pair<std::size_t, std::size_t>> edges;
  std::size_t num_vertices = 0;
};

VertexCoverInstance MakeVertexCoverInstance(
    std::size_t num_vertices,
    const std::vector<std::pair<std::size_t, std::size_t>>& edges);

/// Exact minimum vertex cover by branch and bound (for cross-checking the
/// reduction in tests and benches; exponential).
std::size_t MinVertexCover(
    std::size_t num_vertices,
    const std::vector<std::pair<std::size_t, std::size_t>>& edges);

}  // namespace featsep

#endif  // FEATSEP_WORKLOAD_VERTEX_COVER_H_
