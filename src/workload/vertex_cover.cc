#include "workload/vertex_cover.h"

#include <algorithm>
#include <string>

#include "util/check.h"

namespace featsep {

VertexCoverInstance MakeVertexCoverInstance(
    std::size_t num_vertices,
    const std::vector<std::pair<std::size_t, std::size_t>>& edges) {
  Schema schema;
  RelationId eta = schema.AddRelation("Eta", 1);
  schema.set_entity_relation(eta);
  std::vector<RelationId> p(num_vertices);
  for (std::size_t v = 0; v < num_vertices; ++v) {
    p[v] = schema.AddRelation("P" + std::to_string(v), 1);
  }
  auto shared = std::make_shared<const Schema>(std::move(schema));

  auto db = std::make_shared<Database>(shared);
  auto training = std::make_shared<TrainingDatabase>(db);
  for (std::size_t i = 0; i < edges.size(); ++i) {
    auto [u, v] = edges[i];
    FEATSEP_CHECK_LT(u, num_vertices);
    FEATSEP_CHECK_LT(v, num_vertices);
    Value x = db->Intern("edge" + std::to_string(i));
    db->AddFact(eta, {x});
    db->AddFact(p[u], {x});
    db->AddFact(p[v], {x});
    training->SetLabel(x, kPositive);
  }
  Value y = db->Intern("neg");
  db->AddFact(eta, {y});
  training->SetLabel(y, kNegative);

  return VertexCoverInstance{training, edges, num_vertices};
}

std::size_t MinVertexCover(
    std::size_t num_vertices,
    const std::vector<std::pair<std::size_t, std::size_t>>& edges) {
  std::size_t best = num_vertices;
  std::vector<bool> in_cover(num_vertices, false);
  auto recurse = [&](auto&& self, std::size_t edge_index,
                     std::size_t used) -> void {
    if (used >= best) return;
    // Find the first uncovered edge.
    while (edge_index < edges.size()) {
      auto [u, v] = edges[edge_index];
      if (!in_cover[u] && !in_cover[v]) break;
      ++edge_index;
    }
    if (edge_index == edges.size()) {
      best = std::min(best, used);
      return;
    }
    auto [u, v] = edges[edge_index];
    for (std::size_t pick : {u, v}) {
      in_cover[pick] = true;
      self(self, edge_index + 1, used + 1);
      in_cover[pick] = false;
    }
  };
  recurse(recurse, 0, 0);
  return best;
}

}  // namespace featsep
