#ifndef FEATSEP_WORKLOAD_GENERATORS_H_
#define FEATSEP_WORKLOAD_GENERATORS_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "cq/cq.h"
#include "relational/training_database.h"

namespace featsep {

/// xorshift64* PRNG shared by the random workload generators and the
/// `src/testing` differential-fuzz instance generators; deterministic across
/// platforms and standard libraries (unlike std::mt19937 distributions), so a
/// printed seed reproduces the same instance everywhere.
class WorkloadRng {
 public:
  explicit WorkloadRng(std::uint64_t seed)
      : state_(seed == 0 ? 0x243f6a88 : seed) {}

  std::uint64_t Next() {
    state_ ^= state_ >> 12;
    state_ ^= state_ << 25;
    state_ ^= state_ >> 27;
    return state_ * 0x2545f4914f6cdd1dULL;
  }

  /// Uniform in [0, n); n must be positive.
  std::size_t Below(std::size_t n) { return Next() % n; }

  /// Uniform in [lo, hi] (inclusive).
  std::size_t Range(std::size_t lo, std::size_t hi) {
    return lo + Below(hi - lo + 1);
  }

  /// Uniform in [0, 1).
  double Uniform() { return static_cast<double>(Next() >> 11) * 0x1.0p-53; }

  /// True with probability p.
  bool Chance(double p) { return Uniform() < p; }

 private:
  std::uint64_t state_;
};

/// The shared entity schema of the graph workloads: unary Eta (entity) and
/// binary E (directed edge).
std::shared_ptr<const Schema> GraphWorkloadSchema();

/// Entities at the heads of disjoint directed paths with the given edge
/// counts, labeled +1 iff the length is at least `positive_threshold`.
/// →₁-classes are exactly the path lengths, so this family is GHW(1)-
/// separable and CQ[m]-separable for m ≥ threshold.
std::shared_ptr<TrainingDatabase> PathLengthFamily(
    const std::vector<std::size_t>& lengths, std::size_t positive_threshold);

/// Entities attached by a tail edge to disjoint directed cycles of the
/// given lengths, labeled by `labels` (parallel to `lengths`).
std::shared_ptr<TrainingDatabase> CycleTailFamily(
    const std::vector<std::size_t>& lengths, const std::vector<Label>& labels);

/// Parameters for the random planted-feature workload.
struct RandomGraphParams {
  std::size_t num_entities = 10;
  /// Background noise values and edges.
  std::size_t num_background_nodes = 10;
  std::size_t num_background_edges = 15;
  /// Positive entities start a directed path of this length (the planted
  /// CQ feature); negatives start a strictly shorter one.
  std::size_t planted_path_length = 2;
  /// Fraction of entities whose label is flipped after planting (noise for
  /// the approximate-separability experiments).
  double label_noise = 0.0;
  std::uint64_t seed = 1;
};

/// Random labeled graph database with a planted path feature: without
/// noise it is CQ[planted_path_length]-separable and GHW(1)-separable by
/// construction; with noise the minimal error of Theorem 7.4 grows with
/// the flip count.
std::shared_ptr<TrainingDatabase> RandomPlantedGraph(
    const RandomGraphParams& params);

/// A random unary feature query over the schema: η(x) plus `atoms` random
/// atoms whose arguments are drawn from a growing variable pool (biased
/// toward reuse so the queries are usually connected). For property tests
/// over the CQ machinery.
ConjunctiveQuery RandomFeatureQuery(std::shared_ptr<const Schema> schema,
                                    std::size_t atoms, std::uint64_t seed);

}  // namespace featsep

#endif  // FEATSEP_WORKLOAD_GENERATORS_H_
