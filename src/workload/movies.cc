#include "workload/movies.h"

namespace featsep {

std::shared_ptr<const Schema> MovieSchema() {
  Schema schema;
  RelationId eta = schema.AddRelation("Eta", 1);
  schema.set_entity_relation(eta);
  schema.AddRelation("ActsIn", 2);
  schema.AddRelation("Directs", 2);
  schema.AddRelation("SciFi", 1);
  schema.AddRelation("Drama", 1);
  return std::make_shared<const Schema>(std::move(schema));
}

std::shared_ptr<Database> MakeMovieDatabase() {
  auto db = std::make_shared<Database>(MovieSchema());
  auto person = [&](const std::string& name) {
    db->AddFact("Eta", {name});
  };
  // People.
  for (const char* name :
       {"ada", "bela", "carlos", "dora", "emil", "fay", "gus"}) {
    person(name);
  }
  // Movies and genres (genres are unary relations: the paper's CQs are
  // constant-free, so a binary HasGenre(movie, "scifi") would be invisible
  // to them — any genre value could be substituted).
  db->AddFact("SciFi", {"nebula"});
  db->AddFact("SciFi", {"quasar"});
  db->AddFact("Drama", {"sunset"});
  db->AddFact("Drama", {"harvest"});
  db->AddFact("SciFi", {"orbit"});
  db->AddFact("Drama", {"orbit"});

  // Cast.
  db->AddFact("ActsIn", {"ada", "nebula"});
  db->AddFact("ActsIn", {"ada", "sunset"});
  db->AddFact("ActsIn", {"bela", "quasar"});
  db->AddFact("ActsIn", {"carlos", "sunset"});
  db->AddFact("ActsIn", {"carlos", "harvest"});
  db->AddFact("ActsIn", {"dora", "orbit"});
  db->AddFact("ActsIn", {"emil", "harvest"});
  db->AddFact("ActsIn", {"fay", "nebula"});
  db->AddFact("ActsIn", {"fay", "harvest"});

  // Direction.
  db->AddFact("Directs", {"gus", "nebula"});
  db->AddFact("Directs", {"gus", "harvest"});
  db->AddFact("Directs", {"dora", "orbit"});   // Actor-director.
  db->AddFact("Directs", {"carlos", "sunset"});  // Actor-director.
  return db;
}

}  // namespace featsep
