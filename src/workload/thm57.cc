#include "workload/thm57.h"

#include <string>

#include "util/check.h"
#include "workload/generators.h"

namespace featsep {

std::shared_ptr<TrainingDatabase> AlternatingPathFamily(std::size_t m) {
  FEATSEP_CHECK_GE(m, 1u);
  auto db = std::make_shared<Database>(GraphWorkloadSchema());
  auto training = std::make_shared<TrainingDatabase>(db);
  RelationId eta = db->schema().entity_relation();
  RelationId e = db->schema().FindRelation("E");
  std::vector<Value> nodes;
  for (std::size_t i = 0; i <= m; ++i) {
    nodes.push_back(db->Intern("n" + std::to_string(i)));
  }
  for (std::size_t i = 0; i < m; ++i) {
    db->AddFact(e, {nodes[i], nodes[i + 1]});
  }
  for (std::size_t i = 0; i <= m; ++i) {
    db->AddFact(eta, {nodes[i]});
    training->SetLabel(nodes[i], i % 2 == 0 ? kPositive : kNegative);
  }
  return training;
}

std::vector<std::size_t> FirstPrimes(std::size_t count) {
  std::vector<std::size_t> primes;
  std::size_t candidate = 2;
  while (primes.size() < count) {
    bool is_prime = true;
    for (std::size_t p : primes) {
      if (p * p > candidate) break;
      if (candidate % p == 0) {
        is_prime = false;
        break;
      }
    }
    if (is_prime) primes.push_back(candidate);
    ++candidate;
  }
  return primes;
}

PrimeCycleFamily MakePrimeCycleFamily(std::size_t r) {
  FEATSEP_CHECK_GE(r, 1u);
  std::vector<std::size_t> primes = FirstPrimes(r + 1);
  std::size_t negative_prime = primes.back();
  primes.pop_back();

  std::vector<std::size_t> lengths = primes;
  lengths.push_back(negative_prime);
  std::vector<Label> labels(primes.size(), kPositive);
  labels.push_back(kNegative);

  PrimeCycleFamily family;
  family.training = CycleTailFamily(lengths, labels);
  family.primes = primes;
  family.negative_prime = negative_prime;
  family.lcm = 1;
  for (std::size_t p : primes) family.lcm *= p;

  std::vector<Value> entities = family.training->Entities();
  FEATSEP_CHECK_EQ(entities.size(), r + 1);
  family.positives.assign(entities.begin(), entities.end() - 1);
  family.negative = entities.back();
  return family;
}

}  // namespace featsep
