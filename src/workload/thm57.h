#ifndef FEATSEP_WORKLOAD_THM57_H_
#define FEATSEP_WORKLOAD_THM57_H_

#include <cstddef>
#include <memory>
#include <vector>

#include "relational/training_database.h"

namespace featsep {

/// Witness families for the feature-size and dimension lower bounds
/// (Theorems 5.7 and 6.7). The paper's appendix constructions were not
/// available in the provided text, so this module engineers families with
/// the same *mechanisms* (documented per DESIGN.md §4):
///
/// 1. Dimension growth (Thm 5.7(a)): a single directed path with entities
///    at every node and alternating labels. The m+1 positions are pairwise
///    →₁-inequivalent (a directed path is a core), so the implicit
///    statistic of Algorithm 1 carries one feature per position — dimension
///    m+1. (For the Prop 8.6 *linear-family* mechanism, use disjoint paths
///    as in PathLengthFamily; see tests/dimension_collapse_test.cc.)
///
/// 2. Feature-size blowup (Thm 5.7(b)/6.7, the lcm mechanism behind the
///    product-based canonical explanations): positives sit on tails into
///    directed cycles of the first r primes, the negative on a tail into a
///    cycle of a fresh prime. Any single CQ explanation must contain a
///    connected cycle whose length is divisible by every one of the first
///    r primes, i.e., at least lcm(p₁..p_r) = e^{Θ(r log r)} atoms, while
///    |D| = Θ(Σ pᵢ) — superpolynomial feature blowup at fixed dimension.

/// Family 1: path of `m` edges with all nodes as entities, labels
/// alternating along the path.
std::shared_ptr<TrainingDatabase> AlternatingPathFamily(std::size_t m);

/// Family 2 description.
struct PrimeCycleFamily {
  std::shared_ptr<TrainingDatabase> training;
  std::vector<Value> positives;  ///< Entities on the first r prime cycles.
  Value negative;                ///< Entity on the fresh-prime cycle.
  std::vector<std::size_t> primes;      ///< p₁..p_r.
  std::size_t negative_prime;           ///< The fresh prime.
  std::size_t lcm;                      ///< lcm(p₁..p_r) = ∏ pᵢ.
};

/// Builds Family 2 with the first `r` primes (r ≥ 1; the negative uses the
/// (r+1)-st prime).
PrimeCycleFamily MakePrimeCycleFamily(std::size_t r);

/// The first `count` primes.
std::vector<std::size_t> FirstPrimes(std::size_t count);

}  // namespace featsep

#endif  // FEATSEP_WORKLOAD_THM57_H_
