#ifndef FEATSEP_WORKLOAD_MOVIES_H_
#define FEATSEP_WORKLOAD_MOVIES_H_

#include <memory>

#include "relational/database.h"

namespace featsep {

/// A small hand-curated movie database for the query-by-example scenarios
/// (paper, Section 6.1): people acting in / directing movies that carry
/// genres. Schema:
///   Eta(person), ActsIn(person, movie), Directs(person, movie),
///   SciFi(movie), Drama(movie)
/// (genres are unary relations because the paper's CQs are constant-free).
/// The data is arranged so that natural example sets ("people who acted in
/// some scifi movie", "actor-directors") have small CQ explanations that
/// SolveCqQbe discovers, while adversarial example sets have none.
std::shared_ptr<const Schema> MovieSchema();

std::shared_ptr<Database> MakeMovieDatabase();

}  // namespace featsep

#endif  // FEATSEP_WORKLOAD_MOVIES_H_
