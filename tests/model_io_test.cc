#include "io/model_io.h"

#include <gtest/gtest.h>

#include "core/separability.h"
#include "test_util.h"

namespace featsep {
namespace {

using ::featsep::testing::AddEntity;
using ::featsep::testing::GraphSchema;

SeparatorModel MakeModel() {
  auto schema = GraphSchema();
  ConjunctiveQuery q1 = ConjunctiveQuery::MakeFeatureQuery(schema);
  q1.AddAtom(schema->FindRelation("E"),
             {q1.free_variable(), q1.NewVariable("y")});
  ConjunctiveQuery q2 = ConjunctiveQuery::MakeFeatureQuery(schema);
  q2.AddAtom(schema->FindRelation("E"),
             {q2.NewVariable("z"), q2.free_variable()});
  return SeparatorModel{
      Statistic({q1, q2}),
      LinearClassifier(Rational(BigInt(1), BigInt(2)),
                       {Rational(1), Rational(BigInt(-3), BigInt(4))})};
}

TEST(ModelIoTest, RoundTrip) {
  SeparatorModel model = MakeModel();
  std::string text = WriteSeparatorModel(model);
  auto parsed = ReadSeparatorModel(GraphSchema(), text);
  ASSERT_TRUE(parsed.ok()) << parsed.error().message();
  EXPECT_EQ(parsed.value().statistic.dimension(), 2u);
  EXPECT_EQ(parsed.value().classifier.threshold(),
            Rational(BigInt(1), BigInt(2)));
  EXPECT_EQ(parsed.value().classifier.weights()[1],
            Rational(BigInt(-3), BigInt(4)));
}

TEST(ModelIoTest, RoundTrippedModelClassifiesIdentically) {
  SeparatorModel model = MakeModel();
  auto parsed = ReadSeparatorModel(GraphSchema(), WriteSeparatorModel(model));
  ASSERT_TRUE(parsed.ok());

  Database db(GraphSchema());
  Value e1 = AddEntity(db, "e1");
  Value e2 = AddEntity(db, "e2");
  testing::AddEdge(db, "e1", "x");
  testing::AddEdge(db, "y", "e2");
  Labeling original = model.Apply(db);
  Labeling reparsed = parsed.value().Apply(db);
  EXPECT_EQ(original.Get(e1), reparsed.Get(e1));
  EXPECT_EQ(original.Get(e2), reparsed.Get(e2));
}

TEST(ModelIoTest, TrainedModelSurvivesSerialization) {
  auto db = std::make_shared<Database>(GraphSchema());
  Value e1 = AddEntity(*db, "e1");
  Value e2 = AddEntity(*db, "e2");
  testing::AddEdge(*db, "e1", "a");
  TrainingDatabase training(db);
  training.SetLabel(e1, kPositive);
  training.SetLabel(e2, kNegative);
  CqmSepResult result = DecideCqmSep(training, 1);
  ASSERT_TRUE(result.separable);

  auto parsed = ReadSeparatorModel(db->schema_ptr(),
                                   WriteSeparatorModel(*result.model));
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value().TrainingErrors(training), 0u);
}

TEST(ModelIoTest, Errors) {
  auto schema = GraphSchema();
  EXPECT_FALSE(ReadSeparatorModel(schema, "weight 1\n").ok());
  EXPECT_FALSE(
      ReadSeparatorModel(schema, "threshold 0\nweight 1\n").ok());
  EXPECT_FALSE(ReadSeparatorModel(
                   schema, "feature q(x) :- Eta(x)\nthreshold 1/0\nweight 1\n")
                   .ok());
  EXPECT_FALSE(ReadSeparatorModel(schema, "bogus line\n").ok());
  // Valid minimal model: zero features, threshold only.
  EXPECT_TRUE(ReadSeparatorModel(schema, "threshold 0\n").ok());
}

}  // namespace
}  // namespace featsep
