#include "core/approx.h"

#include <gtest/gtest.h>

#include "core/separability.h"
#include "test_util.h"

namespace featsep {
namespace {

using ::featsep::testing::AddEntity;
using ::featsep::testing::UnarySchema;

/// Separable: a has R (+), b has S (-).
std::shared_ptr<TrainingDatabase> SeparableDataset() {
  auto db = std::make_shared<Database>(UnarySchema());
  Value a = AddEntity(*db, "a");
  Value b = AddEntity(*db, "b");
  db->AddFact("R", {"a"});
  db->AddFact("S", {"b"});
  auto training = std::make_shared<TrainingDatabase>(db);
  training->SetLabel(a, kPositive);
  training->SetLabel(b, kNegative);
  return training;
}

/// Inseparable: twins t1 (+) and t2 (-), plus separable padding so the
/// instance is not degenerate.
std::shared_ptr<TrainingDatabase> NoisyDataset() {
  auto db = std::make_shared<Database>(UnarySchema());
  auto training = std::make_shared<TrainingDatabase>(db);
  Value t1 = AddEntity(*db, "t1");
  Value t2 = AddEntity(*db, "t2");
  training->SetLabel(t1, kPositive);
  training->SetLabel(t2, kNegative);
  for (int i = 0; i < 3; ++i) {
    Value r = AddEntity(*db, "r" + std::to_string(i));
    db->AddFact("R", {"r" + std::to_string(i)});
    training->SetLabel(r, kPositive);
    Value s = AddEntity(*db, "s" + std::to_string(i));
    db->AddFact("S", {"s" + std::to_string(i)});
    training->SetLabel(s, kNegative);
  }
  return training;
}

TEST(CqmApxSepTest, SeparableDataHasZeroMinError) {
  CqmApxSepResult result = DecideCqmApxSep(*SeparableDataset(), 1, 0.0);
  EXPECT_TRUE(result.separable_with_error);
  EXPECT_EQ(result.min_errors, 0u);
}

TEST(CqmApxSepTest, TwinConflictCostsExactlyOne) {
  auto training = NoisyDataset();
  EXPECT_FALSE(DecideCqmSep(*training, 1).separable);
  CqmApxSepResult result = DecideCqmApxSep(*training, 1, 0.0);
  EXPECT_FALSE(result.separable_with_error);
  EXPECT_EQ(result.min_errors, 1u);  // One of the twins must be wrong.
  // 8 entities: budget 1 error needs epsilon >= 1/8.
  EXPECT_TRUE(DecideCqmApxSep(*training, 1, 0.125).separable_with_error);
  EXPECT_FALSE(DecideCqmApxSep(*training, 1, 0.124).separable_with_error);
  // The best model indeed errs exactly once on the training data.
  EXPECT_EQ(result.model->TrainingErrors(*training), 1u);
}

TEST(Prop71ReductionTest, SeparableMapsToApxSeparable) {
  for (double epsilon : {0.0, 0.2, 0.4}) {
    auto training = SeparableDataset();
    auto reduced = ReduceSepToApxSep(*training, epsilon);
    CqmApxSepResult result = DecideCqmApxSep(*reduced, 1, epsilon);
    EXPECT_TRUE(result.separable_with_error) << "epsilon=" << epsilon;
  }
}

TEST(Prop71ReductionTest, InseparableMapsToApxInseparable) {
  for (double epsilon : {0.0, 0.2, 0.4}) {
    auto training = NoisyDataset();
    ASSERT_FALSE(DecideCqmSep(*training, 1).separable);
    auto reduced = ReduceSepToApxSep(*training, epsilon);
    CqmApxSepResult result = DecideCqmApxSep(*reduced, 1, epsilon);
    EXPECT_FALSE(result.separable_with_error) << "epsilon=" << epsilon;
  }
}

TEST(Prop71ReductionTest, AnchorCountRespectsBudgetWindow) {
  auto training = NoisyDataset();  // 8 entities.
  double epsilon = 0.3;
  auto reduced = ReduceSepToApxSep(*training, epsilon);
  std::size_t n = training->Entities().size();
  std::size_t total = reduced->Entities().size();
  std::size_t k = total - n;
  EXPECT_EQ(k % 2, 0u);
  double budget = epsilon * static_cast<double>(total);
  EXPECT_LE(static_cast<double>(k) / 2.0, budget);
  EXPECT_LT(budget, static_cast<double>(k) / 2.0 + 1.0);
}

TEST(Prop71ReductionTest, EpsilonZeroAddsNothing) {
  auto training = SeparableDataset();
  auto reduced = ReduceSepToApxSep(*training, 0.0);
  EXPECT_EQ(reduced->Entities().size(), training->Entities().size());
}

}  // namespace
}  // namespace featsep
