#include "qbe/qbe.h"

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "cq/evaluation.h"
#include "test_util.h"

namespace featsep {
namespace {

using ::featsep::testing::AddCycle;
using ::featsep::testing::AddEntity;
using ::featsep::testing::AddPath;
using ::featsep::testing::GraphSchema;
using ::featsep::testing::UnarySchema;

TEST(CqQbeTest, ExplanationExistsAndVerifies) {
  // Positives start 2-paths, negative starts a 1-edge.
  Database db(GraphSchema());
  Value p1 = AddEntity(db, "p1");
  Value p2 = AddEntity(db, "p2");
  Value n1 = AddEntity(db, "n1");
  testing::AddEdge(db, "p1", "a");
  testing::AddEdge(db, "a", "b");
  testing::AddEdge(db, "p2", "c");
  testing::AddEdge(db, "c", "d");
  testing::AddEdge(db, "n1", "e");

  QbeResult result = SolveCqQbe({&db, {p1, p2}, {n1}});
  ASSERT_TRUE(result.exists);
  ASSERT_TRUE(result.explanation.has_value());
  CqEvaluator evaluator(*result.explanation);
  EXPECT_TRUE(evaluator.SelectsEntity(db, p1));
  EXPECT_TRUE(evaluator.SelectsEntity(db, p2));
  EXPECT_FALSE(evaluator.SelectsEntity(db, n1));
}

TEST(CqQbeTest, NoExplanationWhenNegativeDominates) {
  // Negative starts a 3-path: everything true of the positives' product
  // (a 1-edge pattern) also holds at the negative.
  Database db(GraphSchema());
  Value p1 = AddEntity(db, "p1");
  Value p2 = AddEntity(db, "p2");
  Value n1 = AddEntity(db, "n1");
  testing::AddEdge(db, "p1", "a");
  testing::AddEdge(db, "a", "b");
  testing::AddEdge(db, "p2", "c");
  AddPath(db, "n", 3);
  db.AddFact(db.schema().entity_relation(), {db.FindValue("n0")});
  n1 = db.FindValue("n0");

  QbeResult result = SolveCqQbe({&db, {p1, p2}, {n1}});
  EXPECT_FALSE(result.exists);
}

TEST(CqQbeTest, MinimizedExplanationIsSmallAndCorrect) {
  Database db(GraphSchema());
  Value p1 = AddEntity(db, "p1");
  Value p2 = AddEntity(db, "p2");
  Value n1 = AddEntity(db, "n1");
  testing::AddEdge(db, "p1", "a");
  testing::AddEdge(db, "a", "b");
  testing::AddEdge(db, "p2", "c");
  testing::AddEdge(db, "c", "d");
  testing::AddEdge(db, "n1", "e");

  QbeOptions options;
  options.minimize_explanation = true;
  QbeResult result = SolveCqQbe({&db, {p1, p2}, {n1}}, options);
  ASSERT_TRUE(result.exists);
  // The core of the product is (up to iso) Eta(x), E(x,y), E(y,z).
  EXPECT_LE(result.explanation->NumAtoms(true), 3u);
  CqEvaluator evaluator(*result.explanation);
  EXPECT_TRUE(evaluator.SelectsEntity(db, p1));
  EXPECT_FALSE(evaluator.SelectsEntity(db, n1));
}

TEST(CqQbeTest, ProductSizeReported) {
  Database db(GraphSchema());
  Value p1 = AddEntity(db, "p1");
  Value p2 = AddEntity(db, "p2");
  testing::AddEdge(db, "p1", "a");
  testing::AddEdge(db, "p2", "b");
  QbeResult result = SolveCqQbe({&db, {p1, p2}, {}});
  EXPECT_TRUE(result.exists);
  // Eta: 2x2 = 4 facts; E: 2x2 = 4 facts.
  EXPECT_EQ(result.product_facts, 8u);
}

TEST(GhwQbeTest, CycleLcmSeparationNeedsWidthTwo) {
  // Positives sit on tails into C4 and C6; negative on a tail into C5.
  // A ghw-2 explanation exists (cycle reachable from x whose length is a
  // multiple of lcm(4,6) = 12: maps into C4 and C6 but not C5).
  Database db(GraphSchema());
  RelationId edge = db.schema().FindRelation("E");
  auto attach = [&](const std::string& name, std::size_t len) {
    auto nodes = AddCycle(db, name + "_", len);
    Value e = db.Intern(name);
    db.AddFact(edge, {e, nodes[0]});
    db.AddFact(db.schema().entity_relation(), {e});
    return e;
  };
  Value p4 = attach("p4", 4);
  Value p6 = attach("p6", 6);
  Value n5 = attach("n5", 5);

  EXPECT_TRUE(SolveGhwQbe({&db, {p4, p6}, {n5}}, 2).exists);
  // CQ-QBE (unbounded width) must also find it.
  EXPECT_TRUE(SolveCqQbe({&db, {p4, p6}, {n5}}).exists);
}

TEST(GhwQbeTest, MonotoneInK) {
  // If a width-k explanation exists, a width-(k+1) explanation exists.
  Database db(GraphSchema());
  Value p1 = AddEntity(db, "p1");
  Value n1 = AddEntity(db, "n1");
  testing::AddEdge(db, "p1", "a");
  for (std::size_t k = 1; k <= 2; ++k) {
    EXPECT_TRUE(SolveGhwQbe({&db, {p1}, {n1}}, k).exists) << k;
  }
}

TEST(GhwQbeTest, NoExplanationForDominatedPositive) {
  Database db(GraphSchema());
  Value p1 = AddEntity(db, "p1");
  Value n1 = AddEntity(db, "n1");
  testing::AddEdge(db, "p1", "a");
  testing::AddEdge(db, "n1", "b");
  testing::AddEdge(db, "b", "c");
  // Everything (of any width) true at p1 is true at n1.
  EXPECT_FALSE(SolveGhwQbe({&db, {p1}, {n1}}, 1).exists);
  EXPECT_FALSE(SolveGhwQbe({&db, {p1}, {n1}}, 2).exists);
  EXPECT_FALSE(SolveCqQbe({&db, {p1}, {n1}}).exists);
}

TEST(CqmQbeTest, SingleAtomExplanation) {
  Database db(UnarySchema());
  Value a = AddEntity(db, "a");
  Value b = AddEntity(db, "b");
  Value c = AddEntity(db, "c");
  db.AddFact("R", {"a"});
  db.AddFact("R", {"b"});
  db.AddFact("S", {"c"});
  QbeResult result = SolveCqmQbe({&db, {a, b}, {c}}, 1);
  ASSERT_TRUE(result.exists);
  CqEvaluator evaluator(*result.explanation);
  EXPECT_TRUE(evaluator.SelectsEntity(db, a));
  EXPECT_TRUE(evaluator.SelectsEntity(db, b));
  EXPECT_FALSE(evaluator.SelectsEntity(db, c));
}

TEST(CqmQbeTest, AtomBudgetMatters) {
  // Distinguishing a 2-path head from a 1-edge head needs 2 atoms.
  Database db(GraphSchema());
  Value p = AddEntity(db, "p");
  Value n = AddEntity(db, "n");
  testing::AddEdge(db, "p", "a");
  testing::AddEdge(db, "a", "b");
  testing::AddEdge(db, "n", "c");
  EXPECT_FALSE(SolveCqmQbe({&db, {p}, {n}}, 1).exists);
  EXPECT_TRUE(SolveCqmQbe({&db, {p}, {n}}, 2).exists);
}

TEST(CqmQbeTest, ThreadCountDoesNotChangeTheExplanation) {
  // The candidate sweep runs in enumeration order: whatever explanation the
  // serial scan returns, every thread count must return the same one.
  Database db(GraphSchema());
  Value p1 = AddEntity(db, "p1");
  Value p2 = AddEntity(db, "p2");
  Value n1 = AddEntity(db, "n1");
  Value n2 = AddEntity(db, "n2");
  testing::AddEdge(db, "p1", "a");
  testing::AddEdge(db, "a", "b");
  testing::AddEdge(db, "p2", "c");
  testing::AddEdge(db, "c", "d");
  testing::AddEdge(db, "n1", "e");
  testing::AddEdge(db, "n2", "f");
  QbeInstance instance{&db, {p1, p2}, {n1, n2}};

  QbeResult serial = SolveCqmQbe(instance, 2, 0, {.num_threads = 1});
  ASSERT_TRUE(serial.exists);
  std::string serial_cq = serial.explanation->ToString();
  for (std::size_t threads : {2ul, 4ul, 8ul}) {
    QbeResult parallel = SolveCqmQbe(instance, 2, 0, {.num_threads = threads});
    ASSERT_TRUE(parallel.exists);
    EXPECT_EQ(parallel.explanation->ToString(), serial_cq);
  }
}

TEST(CqQbeTest, ThreadCountDoesNotChangeTheAnswer) {
  Database db(GraphSchema());
  Value p = AddEntity(db, "p");
  std::vector<Value> negatives;
  for (int i = 0; i < 6; ++i) {
    std::string name = "n" + std::to_string(i);
    negatives.push_back(AddEntity(db, name));
    testing::AddEdge(db, name, name + "t");
  }
  testing::AddEdge(db, "p", "a");
  testing::AddEdge(db, "a", "b");
  QbeInstance instance{&db, {p}, negatives};

  QbeResult serial = SolveCqQbe(instance, {.num_threads = 1});
  for (std::size_t threads : {2ul, 4ul}) {
    QbeResult parallel = SolveCqQbe(instance, {.num_threads = threads});
    EXPECT_EQ(parallel.exists, serial.exists);
  }
  EXPECT_TRUE(serial.exists);
}

TEST(QbeConsistencyTest, CqmImpliesCqAndGhw) {
  // A CQ[m] explanation is a CQ explanation and lies in GHW(m).
  Database db(GraphSchema());
  Value p = AddEntity(db, "p");
  Value n = AddEntity(db, "n");
  testing::AddEdge(db, "p", "a");
  testing::AddEdge(db, "a", "b");
  testing::AddEdge(db, "n", "c");
  QbeInstance instance{&db, {p}, {n}};
  ASSERT_TRUE(SolveCqmQbe(instance, 2).exists);
  EXPECT_TRUE(SolveCqQbe(instance).exists);
  EXPECT_TRUE(SolveGhwQbe(instance, 2).exists);
}

}  // namespace
}  // namespace featsep
