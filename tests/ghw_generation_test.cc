#include "core/ghw_generation.h"

#include <gtest/gtest.h>

#include "core/ghw_separability.h"
#include "cq/evaluation.h"
#include "hypertree/ghw.h"
#include "linsep/separability_lp.h"
#include "test_util.h"

namespace featsep {
namespace {

using ::featsep::testing::AddEntity;
using ::featsep::testing::AddPath;
using ::featsep::testing::GraphSchema;

std::shared_ptr<TrainingDatabase> PathDataset() {
  auto db = std::make_shared<Database>(GraphSchema());
  auto training = std::make_shared<TrainingDatabase>(db);
  for (std::size_t len : {0u, 1u, 2u, 3u}) {
    std::string prefix = "p" + std::to_string(len) + "_";
    auto nodes = AddPath(*db, prefix, len);
    db->AddFact(db->schema().entity_relation(), {nodes[0]});
    training->SetLabel(nodes[0], len >= 2 ? kPositive : kNegative);
  }
  return training;
}

TEST(UnravelingTest, DepthZeroIsBareQuery) {
  auto training = PathDataset();
  const Database& db = training->database();
  Value e = db.FindValue("p2_0");
  ConjunctiveQuery q = UnravelingQuery(db, e, 0);
  EXPECT_EQ(q.NumAtoms(true), 0u);
}

TEST(UnravelingTest, UnravelingIsAcyclicAndSelectsBasePoint) {
  auto training = PathDataset();
  const Database& db = training->database();
  Value e = db.FindValue("p3_0");
  for (std::size_t d : {1u, 2u, 3u}) {
    ConjunctiveQuery q = UnravelingQuery(db, e, d);
    EXPECT_TRUE(IsInGhw(q, 1)) << "depth " << d;
    EXPECT_TRUE(CqEvaluator(q).SelectsEntity(db, e)) << "depth " << d;
  }
}

TEST(DistinguishingQueryTest, FindsPathLengthWitness) {
  auto training = PathDataset();
  const Database& db = training->database();
  Value longer = db.FindValue("p2_0");
  Value shorter = db.FindValue("p1_0");
  auto q = FindDistinguishingAcyclicQuery(db, longer, shorter);
  ASSERT_TRUE(q.has_value());
  CqEvaluator evaluator(*q);
  EXPECT_TRUE(evaluator.SelectsEntity(db, longer));
  EXPECT_FALSE(evaluator.SelectsEntity(db, shorter));
  EXPECT_TRUE(IsInGhw(*q, 1));
  // Minimized: the 2-path query has at most 3 atoms (incl. Eta copies).
  EXPECT_LE(q->NumAtoms(true), 3u);
}

TEST(DistinguishingQueryTest, NoneExistsWhenGameHolds) {
  auto training = PathDataset();
  const Database& db = training->database();
  // Everything (acyclic) true at the 1-path head is true at the 3-path
  // head, so no distinguishing query in that direction.
  Value shorter = db.FindValue("p1_0");
  Value longer = db.FindValue("p3_0");
  GhwGenerationOptions options;
  options.max_unravel_depth = 8;
  EXPECT_FALSE(
      FindDistinguishingAcyclicQuery(db, shorter, longer, options)
          .has_value());
}

TEST(ConjoinUnaryTest, SharedFreeVariable) {
  auto schema = GraphSchema();
  ConjunctiveQuery q1 = ConjunctiveQuery::MakeFeatureQuery(schema);
  Variable x1 = q1.free_variable();
  q1.AddAtom(schema->FindRelation("E"), {x1, q1.NewVariable("y")});
  ConjunctiveQuery q2 = ConjunctiveQuery::MakeFeatureQuery(schema);
  Variable x2 = q2.free_variable();
  q2.AddAtom(schema->FindRelation("E"), {q2.NewVariable("z"), x2});
  ConjunctiveQuery joined = ConjoinUnary({q1, q2});
  EXPECT_TRUE(joined.IsUnary());
  // Eta(x) deduplicates; E(x,y) and E(z,x) remain: 3 atoms.
  EXPECT_EQ(joined.NumAtoms(true), 3u);
}

TEST(GenerateGhw1StatisticTest, SeparatesThePathDataset) {
  auto training = PathDataset();
  auto statistic = GenerateGhw1Statistic(*training);
  ASSERT_TRUE(statistic.has_value());
  // One feature per →₁ class (4 classes).
  EXPECT_EQ(statistic->dimension(), 4u);
  // Every feature must lie in GHW(1).
  for (const ConjunctiveQuery& q : statistic->features()) {
    EXPECT_TRUE(IsInGhw(q, 1));
  }
  TrainingCollection collection =
      MakeTrainingCollection(*statistic, *training);
  EXPECT_TRUE(IsLinearlySeparable(collection));
}

TEST(GenerateGhw1StatisticTest, FailsOnInseparableInput) {
  auto db = std::make_shared<Database>(GraphSchema());
  auto training = std::make_shared<TrainingDatabase>(db);
  Value a = AddEntity(*db, "a");
  Value b = AddEntity(*db, "b");
  training->SetLabel(a, kPositive);
  training->SetLabel(b, kNegative);
  EXPECT_FALSE(GenerateGhw1Statistic(*training).has_value());
}

TEST(GenerateGhw1StatisticTest, AgreesWithImplicitClassifier) {
  // The materialized statistic and the implicit Algorithm-1 classifier
  // must classify the training database identically.
  auto training = PathDataset();
  auto statistic = GenerateGhw1Statistic(*training);
  ASSERT_TRUE(statistic.has_value());
  auto classifier = GhwClassifier::Train(training, 1);
  ASSERT_TRUE(classifier.has_value());

  TrainingCollection collection =
      MakeTrainingCollection(*statistic, *training);
  auto separator = FindSeparator(collection);
  ASSERT_TRUE(separator.has_value());

  Labeling implicit = classifier->Classify(training->database());
  std::vector<Value> entities = training->Entities();
  for (std::size_t i = 0; i < entities.size(); ++i) {
    EXPECT_EQ(separator->Classify(collection[i].first),
              implicit.Get(entities[i]));
  }
}

}  // namespace
}  // namespace featsep
