#include <gtest/gtest.h>

#include "core/fo_separability.h"
#include "core/separability.h"
#include "fo/color_refinement.h"
#include "fo/iso.h"
#include "test_util.h"

namespace featsep {
namespace {

using ::featsep::testing::AddCycle;
using ::featsep::testing::AddEntity;
using ::featsep::testing::AddPath;
using ::featsep::testing::GraphSchema;

TEST(ColorRefinementTest, DistinguishesDegrees) {
  Database db(GraphSchema());
  // Star: center with 3 out-edges.
  testing::AddEdge(db, "c", "l1");
  testing::AddEdge(db, "c", "l2");
  testing::AddEdge(db, "c", "l3");
  auto colors = StableColors(db);
  Value c = db.FindValue("c");
  Value l1 = db.FindValue("l1");
  Value l2 = db.FindValue("l2");
  EXPECT_NE(colors[c], colors[l1]);
  EXPECT_EQ(colors[l1], colors[l2]);
}

TEST(ColorRefinementTest, CycleIsColorUniform) {
  Database db(GraphSchema());
  AddCycle(db, "c", 5);
  auto colors = StableColors(db);
  for (Value v : db.domain()) {
    EXPECT_EQ(colors[v], colors[db.domain()[0]]);
  }
}

TEST(ColorRefinementTest, JointRefinementSharesPalette) {
  Database a(GraphSchema());
  AddPath(a, "a", 2);
  Database b(GraphSchema());
  AddPath(b, "b", 2);
  auto [ca, cb] = JointStableColors(a, b);
  // Same positions on isomorphic paths get the same colors.
  EXPECT_EQ(ca[a.FindValue("a0")], cb[b.FindValue("b0")]);
  EXPECT_EQ(ca[a.FindValue("a1")], cb[b.FindValue("b1")]);
  EXPECT_NE(ca[a.FindValue("a0")], ca[a.FindValue("a1")]);
}

TEST(IsoTest, IsomorphicCycles) {
  Database a(GraphSchema());
  AddCycle(a, "a", 6);
  Database b(GraphSchema());
  AddCycle(b, "b", 6);
  EXPECT_TRUE(AreIsomorphic(a, {}, b, {}));
}

TEST(IsoTest, DifferentSizesRejected) {
  Database a(GraphSchema());
  AddCycle(a, "a", 6);
  Database b(GraphSchema());
  AddCycle(b, "b", 5);
  EXPECT_FALSE(AreIsomorphic(a, {}, b, {}));
}

TEST(IsoTest, SameSizeDifferentShape) {
  // Two 3-cycles vs one 6-cycle: same fact and domain counts.
  Database a(GraphSchema());
  AddCycle(a, "a", 3);
  AddCycle(a, "b", 3);
  Database b(GraphSchema());
  AddCycle(b, "c", 6);
  EXPECT_FALSE(AreIsomorphic(a, {}, b, {}));
}

TEST(IsoTest, PointedIsomorphismRespectsPosition) {
  Database a(GraphSchema());
  auto pa = AddPath(a, "a", 2);
  Database b(GraphSchema());
  auto pb = AddPath(b, "b", 2);
  EXPECT_TRUE(AreIsomorphic(a, {pa[0]}, b, {pb[0]}));
  EXPECT_TRUE(AreIsomorphic(a, {pa[1]}, b, {pb[1]}));
  EXPECT_FALSE(AreIsomorphic(a, {pa[0]}, b, {pb[1]}));
}

TEST(IsoTest, TuplePatternsMustMatch) {
  Database a(GraphSchema());
  auto pa = AddPath(a, "a", 1);
  Database b(GraphSchema());
  auto pb = AddPath(b, "b", 1);
  EXPECT_TRUE(AreIsomorphic(a, {pa[0], pa[0]}, b, {pb[0], pb[0]}));
  EXPECT_FALSE(AreIsomorphic(a, {pa[0], pa[0]}, b, {pb[0], pb[1]}));
}

TEST(IsoTest, RegularGraphsNeedIndividualization) {
  // Two non-isomorphic 3-regular-ish digraphs that 1-WL alone cannot
  // split: C6 with chords vs two C3s with chords... use C6 vs C3+C3 with
  // all nodes on cycles (color refinement sees only degrees).
  Database a(GraphSchema());
  AddCycle(a, "a", 6);
  Database b(GraphSchema());
  AddCycle(b, "b", 3);
  AddCycle(b, "c", 3);
  std::uint64_t nodes = 0;
  EXPECT_FALSE(AreIsomorphic(a, {}, b, {}, &nodes));
  EXPECT_GT(nodes, 1u);  // Refinement alone was not discrete.
}

TEST(FoSepTest, SeparableWhenNotIsomorphic) {
  // e1 with one out-edge vs e2 with two: hom-equivalent (CQ-inseparable)
  // but NOT isomorphic — FO separates what CQs cannot (Section 8).
  auto db = std::make_shared<Database>(GraphSchema());
  Value e1 = AddEntity(*db, "e1");
  Value e2 = AddEntity(*db, "e2");
  testing::AddEdge(*db, "e1", "t");
  testing::AddEdge(*db, "e2", "u1");
  testing::AddEdge(*db, "e2", "u2");
  TrainingDatabase training(db);
  training.SetLabel(e1, kPositive);
  training.SetLabel(e2, kNegative);
  EXPECT_FALSE(DecideCqSep(training).separable);
  EXPECT_TRUE(DecideFoSep(training).separable);
}

TEST(FoSepTest, InseparableOnIsomorphicConflict) {
  auto db = std::make_shared<Database>(GraphSchema());
  Value e1 = AddEntity(*db, "e1");
  Value e2 = AddEntity(*db, "e2");
  testing::AddEdge(*db, "e1", "t1");
  testing::AddEdge(*db, "e2", "t2");
  TrainingDatabase training(db);
  training.SetLabel(e1, kPositive);
  training.SetLabel(e2, kNegative);
  FoSepResult result = DecideFoSep(training);
  EXPECT_FALSE(result.separable);
  ASSERT_TRUE(result.conflict.has_value());
}

TEST(FoSepTest, CqSeparableImpliesFoSeparable) {
  // CQ ⊆ FO, so CQ-separability implies FO-separability.
  auto db = std::make_shared<Database>(GraphSchema());
  Value e1 = AddEntity(*db, "e1");
  Value e2 = AddEntity(*db, "e2");
  testing::AddEdge(*db, "e1", "a");
  testing::AddEdge(*db, "a", "b");
  testing::AddEdge(*db, "e2", "c");
  TrainingDatabase training(db);
  training.SetLabel(e1, kPositive);
  training.SetLabel(e2, kNegative);
  EXPECT_TRUE(DecideCqSep(training).separable);
  EXPECT_TRUE(DecideFoSep(training).separable);
}

}  // namespace
}  // namespace featsep
