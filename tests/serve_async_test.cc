// Async serve front-end: submit/poll happy path, future completion order
// independence, deadline expiry (budget outcome surfaced, cache never
// poisoned), deterministic admission-control rejection under a full queue,
// priority inversion (interactive admitted and dispatched ahead of a
// saturated batch class), and clean shutdown with requests still in flight.

#include "serve/async_service.h"

#include <chrono>
#include <cstddef>
#include <future>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "cq/evaluation.h"
#include "relational/database.h"
#include "serve/eval_service.h"
#include "test_util.h"
#include "util/budget.h"

namespace featsep {
namespace testing {
namespace {

using serve::AsyncEvalService;
using serve::AsyncServeOptions;
using serve::EvalService;
using serve::RequestHandle;
using serve::RequestPriority;
using serve::RequestResult;
using serve::RequestState;
using serve::SubmitOptions;
using std::chrono::milliseconds;

std::shared_ptr<const Database> SharedWorld() {
  return std::make_shared<const Database>(MakeWorld());
}

/// Asserts every non-null answer in `result` matches the kernel evaluator —
/// the determinism contract: interrupted requests return nothing or the
/// truth for each feature, never a partial answer.
void ExpectAnswersMatchSerial(const RequestResult& result,
                              const std::vector<ConjunctiveQuery>& features,
                              const Database& db) {
  ASSERT_EQ(result.answers.size(), features.size());
  for (std::size_t i = 0; i < features.size(); ++i) {
    if (result.answers[i] == nullptr) continue;
    CqEvaluator evaluator(features[i]);
    for (Value e : db.Entities()) {
      EXPECT_EQ(result.answers[i]->Selects(db, e),
                evaluator.SelectsEntity(db, e))
          << features[i].ToString() << " on " << db.value_name(e);
    }
  }
}

TEST(ServeAsyncTest, SubmitPollHappyPath) {
  auto db = SharedWorld();
  std::vector<ConjunctiveQuery> features = OutInFeatures();
  AsyncEvalService service;
  RequestHandle handle = service.Submit(features, db);
  ASSERT_TRUE(handle.valid());
  EXPECT_EQ(handle.priority(), RequestPriority::kInteractive);

  const RequestResult& result = handle.Wait();
  EXPECT_EQ(result.state, RequestState::kCompleted);
  EXPECT_EQ(result.budget_outcome, BudgetOutcome::kCompleted);
  EXPECT_EQ(result.sequence, 1u);
  EXPECT_TRUE(result.complete());
  for (const auto& answer : result.answers) EXPECT_NE(answer, nullptr);
  ExpectAnswersMatchSerial(result, features, *db);

  // Poll after completion is repeatable and consistent with Wait.
  EXPECT_TRUE(handle.done());
  EXPECT_EQ(handle.state(), RequestState::kCompleted);
  auto polled = handle.Poll();
  ASSERT_TRUE(polled.has_value());
  EXPECT_EQ(polled->state, RequestState::kCompleted);
  EXPECT_EQ(polled->sequence, result.sequence);

  auto stats = service.stats();
  const auto& cls = stats.of(RequestPriority::kInteractive);
  EXPECT_EQ(cls.submitted, 1u);
  EXPECT_EQ(cls.accepted, 1u);
  EXPECT_EQ(cls.completed, 1u);
  EXPECT_EQ(cls.rejected, 0u);
  EXPECT_EQ(cls.expired, 0u);
  EXPECT_EQ(stats.dispatched, 1u);
}

TEST(ServeAsyncTest, FutureCompletionOrderIndependence) {
  auto db = SharedWorld();
  std::vector<ConjunctiveQuery> features = OutInFeatures();
  AsyncEvalService service;
  std::vector<RequestHandle> handles;
  for (int i = 0; i < 6; ++i) handles.push_back(service.Submit(features, db));

  // Wait in reverse submit order through the future-flavored API: each
  // future completes with the right answers no matter the waiting order.
  for (std::size_t i = handles.size(); i-- > 0;) {
    std::shared_future<RequestResult> future = handles[i].future();
    const RequestResult& result = future.get();
    EXPECT_EQ(result.state, RequestState::kCompleted);
    ExpectAnswersMatchSerial(result, features, *db);
  }
  auto stats = service.stats();
  EXPECT_EQ(stats.of(RequestPriority::kInteractive).completed, 6u);
}

TEST(ServeAsyncTest, AlreadyExpiredDeadlineTerminalizesWithoutDispatch) {
  auto db = SharedWorld();
  AsyncEvalService service;
  SubmitOptions submit;
  submit.timeout = milliseconds(0);  // Expired before it can dispatch.
  RequestHandle handle = service.Submit(OutInFeatures(), db, submit);
  const RequestResult& result = handle.Wait();
  EXPECT_EQ(result.state, RequestState::kExpired);
  EXPECT_EQ(result.budget_outcome, BudgetOutcome::kTimedOut);
  EXPECT_EQ(result.sequence, 0u) << "must not count as dispatched work";
  for (const auto& answer : result.answers) EXPECT_EQ(answer, nullptr);
  EXPECT_EQ(service.stats().of(RequestPriority::kInteractive).expired, 1u);
  // The kernel was never entered.
  EXPECT_EQ(service.backend().stats().features_evaluated, 0u);
}

TEST(ServeAsyncTest, ExpiredRequestSurfacesOutcomeAndNeverPoisonsCache) {
  auto db = SharedWorld();
  std::vector<ConjunctiveQuery> features = OutInFeatures();
  AsyncEvalService service;

  // A one-step budget enters the kernel and trips mid-evaluation, so at
  // least one feature's shard aborts.
  SubmitOptions starved;
  starved.step_limit = 1;
  RequestHandle expired = service.Submit(features, db, starved);
  const RequestResult& expired_result = expired.Wait();
  EXPECT_EQ(expired_result.state, RequestState::kExpired);
  EXPECT_EQ(expired_result.budget_outcome, BudgetOutcome::kBudgetExhausted);
  // Whatever did complete must still be the truth.
  ExpectAnswersMatchSerial(expired_result, features, *db);

  // A later unbudgeted request over the same (database, features) gets the
  // full correct answers: the aborted evaluation was never cached.
  RequestHandle fresh = service.Submit(features, db);
  const RequestResult& fresh_result = fresh.Wait();
  EXPECT_EQ(fresh_result.state, RequestState::kCompleted);
  for (const auto& answer : fresh_result.answers) EXPECT_NE(answer, nullptr);
  ExpectAnswersMatchSerial(fresh_result, features, *db);

  auto backend = service.backend().stats();
  EXPECT_GE(backend.evaluation_retries, 1u)
      << "the aborted key should have been re-requested, not cache-hit";
  auto stats = service.stats();
  const auto& cls = stats.of(RequestPriority::kInteractive);
  EXPECT_EQ(cls.expired, 1u);
  EXPECT_EQ(cls.completed, 1u);
}

TEST(ServeAsyncTest, RejectedAtAdmissionIsDeterministicWhenQueueFull) {
  auto db = SharedWorld();
  std::vector<ConjunctiveQuery> features = OutInFeatures();
  AsyncServeOptions options;
  options.queue_capacity = 2;
  options.num_dispatchers = 1;
  AsyncEvalService service(options);
  service.PauseDispatch();  // Hold the queue at a deterministic depth.

  RequestHandle first = service.Submit(features, db);
  RequestHandle second = service.Submit(features, db);
  RequestHandle shed = service.Submit(features, db);

  // The rejection is structured and immediate: terminal before Submit
  // returned, so neither Poll nor Wait can block.
  EXPECT_TRUE(shed.done());
  EXPECT_EQ(shed.state(), RequestState::kRejected);
  auto polled = shed.Poll();
  ASSERT_TRUE(polled.has_value());
  EXPECT_EQ(polled->state, RequestState::kRejected);
  EXPECT_EQ(polled->sequence, 0u);
  ASSERT_EQ(polled->answers.size(), features.size());
  for (const auto& answer : polled->answers) EXPECT_EQ(answer, nullptr);

  auto stats = service.stats();
  const auto& cls = stats.of(RequestPriority::kInteractive);
  EXPECT_EQ(cls.submitted, 3u);
  EXPECT_EQ(cls.accepted, 2u);
  EXPECT_EQ(cls.rejected, 1u);
  EXPECT_EQ(cls.queue_high_water, 2u);
  EXPECT_EQ(service.queue_depth(RequestPriority::kInteractive), 2u);

  service.ResumeDispatch();
  EXPECT_EQ(first.Wait().state, RequestState::kCompleted);
  EXPECT_EQ(second.Wait().state, RequestState::kCompleted);
}

TEST(ServeAsyncTest, InteractiveAdmittedAndDispatchedAheadOfSaturatedBatch) {
  auto db = SharedWorld();
  std::vector<ConjunctiveQuery> features = OutInFeatures();
  AsyncServeOptions options;
  options.queue_capacity = 2;
  options.num_dispatchers = 1;
  AsyncEvalService service(options);
  service.PauseDispatch();

  SubmitOptions batch;
  batch.priority = RequestPriority::kBatch;
  RequestHandle batch_a = service.Submit(features, db, batch);
  RequestHandle batch_b = service.Submit(features, db, batch);
  RequestHandle batch_shed = service.Submit(features, db, batch);
  EXPECT_EQ(batch_shed.state(), RequestState::kRejected);

  // The batch class is saturated; an interactive request is still admitted
  // (separate queue) — no priority inversion at admission.
  RequestHandle interactive = service.Submit(features, db);
  EXPECT_NE(interactive.state(), RequestState::kRejected);
  EXPECT_EQ(service.queue_depth(RequestPriority::kInteractive), 1u);
  EXPECT_EQ(service.queue_depth(RequestPriority::kBatch), 2u);

  service.ResumeDispatch();
  const RequestResult& ir = interactive.Wait();
  const RequestResult& ba = batch_a.Wait();
  const RequestResult& bb = batch_b.Wait();
  EXPECT_EQ(ir.state, RequestState::kCompleted);
  EXPECT_EQ(ba.state, RequestState::kCompleted);
  EXPECT_EQ(bb.state, RequestState::kCompleted);
  // Nor at dispatch: the interactive request submitted last runs first.
  EXPECT_LT(ir.sequence, ba.sequence);
  EXPECT_LT(ir.sequence, bb.sequence);
  EXPECT_LT(ba.sequence, bb.sequence);  // FIFO within a class.

  auto stats = service.stats();
  EXPECT_EQ(stats.of(RequestPriority::kBatch).rejected, 1u);
  EXPECT_EQ(stats.of(RequestPriority::kBatch).completed, 2u);
  EXPECT_EQ(stats.of(RequestPriority::kInteractive).completed, 1u);
}

TEST(ServeAsyncTest, CancelQueuedRequestTerminalizesAsCancelled) {
  auto db = SharedWorld();
  AsyncEvalService service;
  service.PauseDispatch();
  RequestHandle handle = service.Submit(OutInFeatures(), db);
  handle.Cancel();
  service.ResumeDispatch();
  const RequestResult& result = handle.Wait();
  EXPECT_EQ(result.state, RequestState::kCancelled);
  EXPECT_EQ(result.budget_outcome, BudgetOutcome::kCancelled);
  EXPECT_EQ(result.sequence, 0u);
  EXPECT_EQ(service.stats().of(RequestPriority::kInteractive).cancelled, 1u);
  EXPECT_EQ(service.backend().stats().features_evaluated, 0u);
}

TEST(ServeAsyncTest, CleanShutdownWithRequestsInFlight) {
  auto db = std::make_shared<Database>(GraphSchema());
  AddClique(*db, "k", 8);
  for (int i = 0; i < 8; ++i) AddEntity(*db, "k" + std::to_string(i));
  auto shared = std::shared_ptr<const Database>(db);
  std::vector<ConjunctiveQuery> features = OutInFeatures();

  std::vector<RequestHandle> handles;
  {
    AsyncEvalService service;
    service.PauseDispatch();
    for (int i = 0; i < 8; ++i) {
      SubmitOptions submit;
      submit.priority =
          i % 2 ? RequestPriority::kBatch : RequestPriority::kInteractive;
      handles.push_back(service.Submit(features, shared, submit));
    }
    service.ResumeDispatch();
    // Destruct with work queued and likely in flight: queued requests
    // terminalize as kCancelled without running, a running one unwinds
    // cooperatively, and every future is satisfied before the destructor
    // returns — asan/tsan verify no leak and no race.
  }
  for (const RequestHandle& handle : handles) {
    ASSERT_TRUE(handle.done());
    const RequestResult& result = handle.Wait();  // Safe after destruction.
    EXPECT_TRUE(result.state == RequestState::kCompleted ||
                result.state == RequestState::kCancelled)
        << RequestStateName(result.state);
    ExpectAnswersMatchSerial(result, features, *shared);
  }
}

TEST(ServeAsyncTest, StatsBalanceAcrossMixedOutcomes) {
  auto db = SharedWorld();
  std::vector<ConjunctiveQuery> features = OutInFeatures();
  AsyncServeOptions options;
  options.queue_capacity = 3;
  AsyncEvalService service(options);
  service.PauseDispatch();
  std::vector<RequestHandle> handles;
  for (int i = 0; i < 5; ++i) {
    SubmitOptions submit;
    if (i == 1) submit.timeout = milliseconds(0);
    handles.push_back(service.Submit(features, db, submit));
  }
  handles[2].Cancel();
  service.ResumeDispatch();
  for (const RequestHandle& handle : handles) handle.Wait();

  auto stats = service.stats();
  const auto& cls = stats.of(RequestPriority::kInteractive);
  EXPECT_EQ(cls.submitted, 5u);
  EXPECT_EQ(cls.submitted, cls.accepted + cls.rejected);
  EXPECT_EQ(cls.accepted, cls.completed + cls.expired + cls.cancelled);
  EXPECT_EQ(cls.rejected, 2u);
  EXPECT_EQ(cls.expired, 1u);
  EXPECT_EQ(cls.cancelled, 1u);
  EXPECT_EQ(cls.completed, 1u);
  EXPECT_LE(cls.queue_high_water, options.queue_capacity);
}

TEST(ServeAsyncTest, AsyncPathWarmsSharedBackendCache) {
  auto db = SharedWorld();
  std::vector<ConjunctiveQuery> features = OutInFeatures();
  AsyncEvalService service;
  service.Submit(features, db).Wait();
  auto cold = service.backend().stats();
  EXPECT_EQ(cold.cache_misses, features.size());

  // The synchronous backend path sees the answers the async path cached.
  service.backend().Matrix(features, *db);
  auto warm = service.backend().stats();
  EXPECT_EQ(warm.cache_hits, features.size());
  EXPECT_EQ(warm.features_evaluated, cold.features_evaluated);
}

TEST(ServeAsyncTest, EnumNamesAreStable) {
  EXPECT_STREQ(serve::RequestPriorityName(RequestPriority::kInteractive),
               "interactive");
  EXPECT_STREQ(serve::RequestPriorityName(RequestPriority::kBatch), "batch");
  EXPECT_STREQ(serve::RequestStateName(RequestState::kQueued), "queued");
  EXPECT_STREQ(serve::RequestStateName(RequestState::kRejected), "rejected");
  EXPECT_STREQ(serve::RequestStateName(RequestState::kExpired), "expired");
}

}  // namespace
}  // namespace testing
}  // namespace featsep
