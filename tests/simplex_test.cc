#include "linsep/simplex.h"

#include <gtest/gtest.h>

namespace featsep {
namespace {

Rational R(std::int64_t n, std::int64_t d = 1) {
  return Rational(BigInt(n), BigInt(d));
}

TEST(SimplexTest, SimpleOptimum) {
  // max x + y s.t. x + 2y <= 4, 3x + y <= 6, x,y >= 0 -> (8/5, 6/5), obj 14/5.
  LpProblem p;
  p.a = {{R(1), R(2)}, {R(3), R(1)}};
  p.b = {R(4), R(6)};
  p.c = {R(1), R(1)};
  LpSolution s = SolveLp(p);
  ASSERT_EQ(s.status, LpStatus::kOptimal);
  EXPECT_EQ(s.objective, R(14, 5));
  EXPECT_EQ(s.x[0], R(8, 5));
  EXPECT_EQ(s.x[1], R(6, 5));
}

TEST(SimplexTest, Unbounded) {
  // max x s.t. -x + y <= 1.
  LpProblem p;
  p.a = {{R(-1), R(1)}};
  p.b = {R(1)};
  p.c = {R(1), R(0)};
  EXPECT_EQ(SolveLp(p).status, LpStatus::kUnbounded);
}

TEST(SimplexTest, InfeasibleNeedsPhase1) {
  // x <= -1 with x >= 0 is infeasible.
  LpProblem p;
  p.a = {{R(1)}};
  p.b = {R(-1)};
  p.c = {R(0)};
  EXPECT_EQ(SolveLp(p).status, LpStatus::kInfeasible);
}

TEST(SimplexTest, FeasibleWithNegativeRhs) {
  // x >= 2 (as -x <= -2), x <= 5, max -x: optimum x = 2.
  LpProblem p;
  p.a = {{R(-1)}, {R(1)}};
  p.b = {R(-2), R(5)};
  p.c = {R(-1)};
  LpSolution s = SolveLp(p);
  ASSERT_EQ(s.status, LpStatus::kOptimal);
  EXPECT_EQ(s.x[0], R(2));
  EXPECT_EQ(s.objective, R(-2));
}

TEST(SimplexTest, EqualityViaTwoInequalities) {
  // x + y = 3 (two inequalities), max 2x + y s.t. x <= 2: x=2, y=1, obj 5.
  LpProblem p;
  p.a = {{R(1), R(1)}, {R(-1), R(-1)}, {R(1), R(0)}};
  p.b = {R(3), R(-3), R(2)};
  p.c = {R(2), R(1)};
  LpSolution s = SolveLp(p);
  ASSERT_EQ(s.status, LpStatus::kOptimal);
  EXPECT_EQ(s.objective, R(5));
  EXPECT_EQ(s.x[0], R(2));
  EXPECT_EQ(s.x[1], R(1));
}

TEST(SimplexTest, DegenerateDoesNotCycle) {
  // A classic degenerate instance (Beale-like); Bland's rule must terminate.
  LpProblem p;
  p.a = {{R(1, 4), R(-8), R(-1), R(9)},
         {R(1, 2), R(-12), R(-1, 2), R(3)},
         {R(0), R(0), R(1), R(0)}};
  p.b = {R(0), R(0), R(1)};
  p.c = {R(3, 4), R(-20), R(1, 2), R(-6)};
  LpSolution s = SolveLp(p);
  ASSERT_EQ(s.status, LpStatus::kOptimal);
  EXPECT_EQ(s.objective, R(5, 4));
}

TEST(SimplexTest, ZeroObjectiveFeasibility) {
  LpProblem p;
  p.a = {{R(1), R(1)}, {R(-1), R(0)}};
  p.b = {R(10), R(-3)};
  p.c = {R(0), R(0)};
  LpSolution s = SolveLp(p);
  ASSERT_EQ(s.status, LpStatus::kOptimal);
  // Solution satisfies constraints: x0 >= 3, x0 + x1 <= 10.
  EXPECT_GE(s.x[0], R(3));
  EXPECT_LE(s.x[0] + s.x[1], R(10));
}

TEST(SimplexTest, RedundantRows) {
  // Duplicate constraints with a forced equality x = 4.
  LpProblem p;
  p.a = {{R(1)}, {R(1)}, {R(-1)}};
  p.b = {R(4), R(4), R(-4)};
  p.c = {R(1)};
  LpSolution s = SolveLp(p);
  ASSERT_EQ(s.status, LpStatus::kOptimal);
  EXPECT_EQ(s.x[0], R(4));
}

TEST(SimplexTest, ExactFractionsSurvive) {
  // max x s.t. 3x <= 1 -> x = 1/3 exactly.
  LpProblem p;
  p.a = {{R(3)}};
  p.b = {R(1)};
  p.c = {R(1)};
  LpSolution s = SolveLp(p);
  ASSERT_EQ(s.status, LpStatus::kOptimal);
  EXPECT_EQ(s.x[0], R(1, 3));
}

}  // namespace
}  // namespace featsep
