#include "numeric/rational.h"

#include <random>

#include <gtest/gtest.h>

namespace featsep {
namespace {

TEST(RationalTest, NormalizationReducesAndFixesSign) {
  Rational r(BigInt(4), BigInt(-6));
  EXPECT_EQ(r.numerator().ToInt64(), -2);
  EXPECT_EQ(r.denominator().ToInt64(), 3);
  EXPECT_EQ(r.ToString(), "-2/3");

  Rational zero(BigInt(0), BigInt(-5));
  EXPECT_TRUE(zero.is_zero());
  EXPECT_EQ(zero.denominator().ToInt64(), 1);
}

TEST(RationalTest, IntegerRendering) {
  EXPECT_EQ(Rational(7).ToString(), "7");
  EXPECT_EQ(Rational(BigInt(14), BigInt(7)).ToString(), "2");
}

TEST(RationalTest, Arithmetic) {
  Rational half(BigInt(1), BigInt(2));
  Rational third(BigInt(1), BigInt(3));
  EXPECT_EQ((half + third).ToString(), "5/6");
  EXPECT_EQ((half - third).ToString(), "1/6");
  EXPECT_EQ((half * third).ToString(), "1/6");
  EXPECT_EQ((half / third).ToString(), "3/2");
  EXPECT_EQ((-half).ToString(), "-1/2");
}

TEST(RationalTest, Comparisons) {
  Rational half(BigInt(1), BigInt(2));
  Rational third(BigInt(1), BigInt(3));
  Rational neg(BigInt(-7), BigInt(2));
  EXPECT_LT(third, half);
  EXPECT_GT(half, neg);
  EXPECT_LE(half, half);
  EXPECT_EQ(Rational(BigInt(2), BigInt(4)), half);
  EXPECT_NE(half, third);
}

TEST(RationalTest, SignAndZero) {
  EXPECT_EQ(Rational(5).sign(), 1);
  EXPECT_EQ(Rational(-5).sign(), -1);
  EXPECT_EQ(Rational(0).sign(), 0);
  EXPECT_TRUE((Rational(5) - Rational(5)).is_zero());
}

TEST(RationalTest, ToDouble) {
  EXPECT_NEAR(Rational(BigInt(1), BigInt(3)).ToDouble(), 1.0 / 3.0, 1e-12);
  EXPECT_NEAR(Rational(BigInt(-22), BigInt(7)).ToDouble(), -22.0 / 7.0,
              1e-12);
}

// Property test: field axioms on random small rationals.
TEST(RationalPropertyTest, FieldAxioms) {
  std::mt19937_64 rng(5);
  std::uniform_int_distribution<std::int64_t> num(-50, 50);
  std::uniform_int_distribution<std::int64_t> den(1, 30);
  auto random_rational = [&] {
    return Rational(BigInt(num(rng)), BigInt(den(rng)));
  };
  for (int trial = 0; trial < 500; ++trial) {
    Rational a = random_rational();
    Rational b = random_rational();
    Rational c = random_rational();
    EXPECT_EQ(a + b, b + a);
    EXPECT_EQ(a * b, b * a);
    EXPECT_EQ((a + b) + c, a + (b + c));
    EXPECT_EQ((a * b) * c, a * (b * c));
    EXPECT_EQ(a * (b + c), a * b + a * c);
    EXPECT_EQ(a + Rational(0), a);
    EXPECT_EQ(a * Rational(1), a);
    EXPECT_TRUE((a - a).is_zero());
    if (!a.is_zero()) {
      EXPECT_EQ(a / a, Rational(1));
      EXPECT_EQ((b / a) * a, b);
    }
  }
}

// Property test: Compare is a total order consistent with ToDouble.
TEST(RationalPropertyTest, OrderConsistency) {
  std::mt19937_64 rng(13);
  std::uniform_int_distribution<std::int64_t> num(-100, 100);
  std::uniform_int_distribution<std::int64_t> den(1, 40);
  for (int trial = 0; trial < 500; ++trial) {
    Rational a(BigInt(num(rng)), BigInt(den(rng)));
    Rational b(BigInt(num(rng)), BigInt(den(rng)));
    int compared = Rational::Compare(a, b);
    double da = a.ToDouble();
    double db = b.ToDouble();
    if (compared < 0) {
      EXPECT_LT(da, db + 1e-12);
    }
    if (compared > 0) {
      EXPECT_GT(da, db - 1e-12);
    }
    if (compared == 0) {
      EXPECT_NEAR(da, db, 1e-12);
    }
  }
}

}  // namespace
}  // namespace featsep
