#include "numeric/bigint.h"

#include <cstdint>
#include <random>
#include <string>

#include <gtest/gtest.h>

namespace featsep {
namespace {

TEST(BigIntTest, ZeroProperties) {
  BigInt zero;
  EXPECT_TRUE(zero.is_zero());
  EXPECT_FALSE(zero.is_negative());
  EXPECT_EQ(zero.sign(), 0);
  EXPECT_EQ(zero.ToString(), "0");
  EXPECT_EQ((-zero).ToString(), "0");
  EXPECT_EQ(zero.ToInt64(), 0);
}

TEST(BigIntTest, Int64RoundTrip) {
  for (std::int64_t v :
       std::initializer_list<std::int64_t>{0, 1, -1, 42, -42, 1LL << 40,
                                           -(1LL << 40), INT64_MAX,
                                           INT64_MIN + 1}) {
    BigInt big(v);
    EXPECT_TRUE(big.FitsInt64());
    EXPECT_EQ(big.ToInt64(), v) << v;
    EXPECT_EQ(big.ToString(), std::to_string(v)) << v;
  }
}

TEST(BigIntTest, Int64MinHandledWithoutOverflow) {
  BigInt big(INT64_MIN);
  EXPECT_TRUE(big.FitsInt64());
  EXPECT_EQ(big.ToInt64(), INT64_MIN);
  EXPECT_EQ(big.ToString(), std::to_string(INT64_MIN));
}

TEST(BigIntTest, FromStringValid) {
  EXPECT_EQ(BigInt::FromString("0").value().ToInt64(), 0);
  EXPECT_EQ(BigInt::FromString("-0").value().ToInt64(), 0);
  EXPECT_EQ(BigInt::FromString("+17").value().ToInt64(), 17);
  EXPECT_EQ(BigInt::FromString("-00012").value().ToInt64(), -12);
  EXPECT_EQ(
      BigInt::FromString("123456789012345678901234567890").value().ToString(),
      "123456789012345678901234567890");
}

TEST(BigIntTest, FromStringInvalid) {
  EXPECT_FALSE(BigInt::FromString("").ok());
  EXPECT_FALSE(BigInt::FromString("-").ok());
  EXPECT_FALSE(BigInt::FromString("12x").ok());
  EXPECT_FALSE(BigInt::FromString(" 12").ok());
}

TEST(BigIntTest, AdditionCarries) {
  BigInt a = BigInt::FromString("999999999999999999999999").value();
  BigInt one(1);
  EXPECT_EQ((a + one).ToString(), "1000000000000000000000000");
}

TEST(BigIntTest, MixedSignAddition) {
  EXPECT_EQ((BigInt(5) + BigInt(-7)).ToInt64(), -2);
  EXPECT_EQ((BigInt(-5) + BigInt(7)).ToInt64(), 2);
  EXPECT_EQ((BigInt(-5) + BigInt(-7)).ToInt64(), -12);
  EXPECT_EQ((BigInt(5) + BigInt(-5)).sign(), 0);
}

TEST(BigIntTest, MultiplicationLarge) {
  BigInt a = BigInt::FromString("123456789123456789").value();
  BigInt b = BigInt::FromString("-987654321987654321").value();
  EXPECT_EQ((a * b).ToString(), "-121932631356500531347203169112635269");
}

TEST(BigIntTest, DivModTruncatedSemantics) {
  // C++ semantics: quotient toward zero, remainder has dividend's sign.
  struct Case {
    std::int64_t a, b, q, r;
  };
  for (const Case& c : {Case{7, 3, 2, 1}, Case{-7, 3, -2, -1},
                        Case{7, -3, -2, 1}, Case{-7, -3, 2, -1},
                        Case{6, 3, 2, 0}, Case{0, 5, 0, 0}}) {
    BigInt q, r;
    BigInt::DivMod(BigInt(c.a), BigInt(c.b), &q, &r);
    EXPECT_EQ(q.ToInt64(), c.q) << c.a << "/" << c.b;
    EXPECT_EQ(r.ToInt64(), c.r) << c.a << "%" << c.b;
  }
}

TEST(BigIntTest, DivisionLarge) {
  BigInt a = BigInt::FromString("121932631356500531347203169112635269").value();
  BigInt b = BigInt::FromString("987654321987654321").value();
  EXPECT_EQ((a / b).ToString(), "123456789123456789");
  EXPECT_TRUE((a % b).is_zero());
}

TEST(BigIntTest, Gcd) {
  EXPECT_EQ(BigInt::Gcd(BigInt(12), BigInt(18)).ToInt64(), 6);
  EXPECT_EQ(BigInt::Gcd(BigInt(-12), BigInt(18)).ToInt64(), 6);
  EXPECT_EQ(BigInt::Gcd(BigInt(0), BigInt(5)).ToInt64(), 5);
  EXPECT_EQ(BigInt::Gcd(BigInt(7), BigInt(0)).ToInt64(), 7);
  EXPECT_EQ(BigInt::Gcd(BigInt(17), BigInt(13)).ToInt64(), 1);
}

TEST(BigIntTest, Comparisons) {
  EXPECT_LT(BigInt(-2), BigInt(1));
  EXPECT_LT(BigInt(1), BigInt(2));
  EXPECT_LT(BigInt(-3), BigInt(-2));
  EXPECT_LE(BigInt(2), BigInt(2));
  EXPECT_GT(BigInt::FromString("100000000000000000000").value(), BigInt(1));
  EXPECT_LT(BigInt::FromString("-100000000000000000000").value(),
            BigInt(INT64_MIN));
}

TEST(BigIntTest, HashConsistentWithEquality) {
  BigInt a = BigInt::FromString("123456789012345678901").value();
  BigInt b = BigInt::FromString("123456789012345678901").value();
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.Hash(), b.Hash());
}

// Property test: arithmetic on BigInt agrees with native __int128 across
// random inputs.
TEST(BigIntPropertyTest, AgreesWithInt128) {
  std::mt19937_64 rng(7);
  std::uniform_int_distribution<std::int64_t> dist(-1000000000LL,
                                                   1000000000LL);
  for (int trial = 0; trial < 2000; ++trial) {
    std::int64_t x = dist(rng);
    std::int64_t y = dist(rng);
    BigInt a(x), b(y);
    __int128 sum = static_cast<__int128>(x) + y;
    __int128 product = static_cast<__int128>(x) * y;
    EXPECT_EQ((a + b).ToInt64(), static_cast<std::int64_t>(sum));
    EXPECT_EQ((a - b).ToInt64(), static_cast<std::int64_t>(
                                     static_cast<__int128>(x) - y));
    EXPECT_EQ((a * b).ToInt64(), static_cast<std::int64_t>(product));
    if (y != 0) {
      EXPECT_EQ((a / b).ToInt64(), x / y);
      EXPECT_EQ((a % b).ToInt64(), x % y);
    }
  }
}

// Property test: (a/b)*b + a%b == a for random big operands.
TEST(BigIntPropertyTest, DivModIdentity) {
  std::mt19937_64 rng(11);
  auto random_big = [&](int digits) {
    std::string s;
    if (rng() % 2 == 0) s += '-';
    s += static_cast<char>('1' + rng() % 9);
    for (int i = 1; i < digits; ++i) {
      s += static_cast<char>('0' + rng() % 10);
    }
    return BigInt::FromString(s).value();
  };
  for (int trial = 0; trial < 200; ++trial) {
    BigInt a = random_big(1 + static_cast<int>(rng() % 40));
    BigInt b = random_big(1 + static_cast<int>(rng() % 20));
    BigInt q, r;
    BigInt::DivMod(a, b, &q, &r);
    EXPECT_EQ(q * b + r, a) << a << " / " << b;
    EXPECT_LT(r.abs(), b.abs());
  }
}

TEST(BigIntTest, ToDoubleApproximation) {
  BigInt a = BigInt::FromString("1000000000000000000000").value();
  EXPECT_NEAR(a.ToDouble(), 1e21, 1e7);
  EXPECT_NEAR(BigInt(-12345).ToDouble(), -12345.0, 1e-9);
}

}  // namespace
}  // namespace featsep
