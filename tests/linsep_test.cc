#include <random>

#include <gtest/gtest.h>

#include "linsep/linear_classifier.h"
#include "linsep/min_error.h"
#include "linsep/perceptron.h"
#include "linsep/separability_lp.h"

namespace featsep {
namespace {

TEST(LinearClassifierTest, ClassifyThresholdSemantics) {
  // Sum >= w0 -> +1 (boundary inclusive), per the paper's definition.
  LinearClassifier clf(Rational(1), {Rational(1)});
  EXPECT_EQ(clf.Classify({1}), kPositive);   // 1 >= 1.
  EXPECT_EQ(clf.Classify({-1}), kNegative);  // -1 < 1.
}

TEST(SeparabilityLpTest, AndFunctionIsSeparable) {
  TrainingCollection examples = {
      {{1, 1}, kPositive},
      {{1, -1}, kNegative},
      {{-1, 1}, kNegative},
      {{-1, -1}, kNegative},
  };
  auto clf = FindSeparator(examples);
  ASSERT_TRUE(clf.has_value());
  EXPECT_EQ(clf->CountErrors(examples), 0u);
}

TEST(SeparabilityLpTest, XorIsNotSeparable) {
  TrainingCollection examples = {
      {{1, 1}, kPositive},
      {{-1, -1}, kPositive},
      {{1, -1}, kNegative},
      {{-1, 1}, kNegative},
  };
  EXPECT_FALSE(IsLinearlySeparable(examples));
}

TEST(SeparabilityLpTest, ContradictoryLabelsOnSameVector) {
  TrainingCollection examples = {
      {{1, 1}, kPositive},
      {{1, 1}, kNegative},
  };
  EXPECT_FALSE(IsLinearlySeparable(examples));
}

TEST(SeparabilityLpTest, AllSameLabelTrivially) {
  TrainingCollection examples = {
      {{1, -1}, kPositive},
      {{-1, 1}, kPositive},
  };
  EXPECT_TRUE(IsLinearlySeparable(examples));
  TrainingCollection negatives = {
      {{1, -1}, kNegative},
      {{-1, 1}, kNegative},
  };
  EXPECT_TRUE(IsLinearlySeparable(negatives));
}

TEST(SeparabilityLpTest, EmptyCollection) {
  EXPECT_TRUE(IsLinearlySeparable({}));
}

TEST(SeparabilityLpTest, SingleFeatureDictatorship) {
  // Label equals the 3rd feature: separable by that coordinate.
  std::mt19937_64 rng(23);
  TrainingCollection examples;
  for (int i = 0; i < 30; ++i) {
    FeatureVector v;
    for (int j = 0; j < 5; ++j) v.push_back(rng() % 2 == 0 ? 1 : -1);
    examples.emplace_back(v, v[2] == 1 ? kPositive : kNegative);
  }
  auto clf = FindSeparator(examples);
  ASSERT_TRUE(clf.has_value());
  EXPECT_EQ(clf->CountErrors(examples), 0u);
}

// Property test: for random small collections, LP separability agrees with
// brute force over a grid of integer weight vectors when the grid certifies
// separability, and the returned classifier is always consistent.
TEST(SeparabilityLpPropertyTest, WitnessAlwaysConsistent) {
  std::mt19937_64 rng(29);
  int separable_count = 0;
  for (int trial = 0; trial < 100; ++trial) {
    TrainingCollection examples;
    int n = 2 + static_cast<int>(rng() % 3);
    int m = 3 + static_cast<int>(rng() % 8);
    for (int i = 0; i < m; ++i) {
      FeatureVector v;
      for (int j = 0; j < n; ++j) v.push_back(rng() % 2 == 0 ? 1 : -1);
      examples.emplace_back(v, rng() % 2 == 0 ? kPositive : kNegative);
    }
    auto clf = FindSeparator(examples);
    if (clf.has_value()) {
      ++separable_count;
      EXPECT_EQ(clf->CountErrors(examples), 0u);
    }
  }
  EXPECT_GT(separable_count, 0);
}

TEST(MinErrorTest, SeparableDataHasZeroErrors) {
  TrainingCollection examples = {
      {{1, 1}, kPositive},
      {{-1, -1}, kNegative},
  };
  MinErrorResult result = MinimizeErrors(examples);
  EXPECT_EQ(result.errors, 0u);
}

TEST(MinErrorTest, XorNeedsExactlyOneError) {
  TrainingCollection examples = {
      {{1, 1}, kPositive},
      {{-1, -1}, kPositive},
      {{1, -1}, kNegative},
      {{-1, 1}, kNegative},
  };
  MinErrorResult result = MinimizeErrors(examples);
  EXPECT_EQ(result.errors, 1u);
  EXPECT_EQ(result.classifier.CountErrors(examples), 1u);
}

TEST(MinErrorTest, ContradictionCostsTheMinoritySide) {
  TrainingCollection examples = {
      {{1}, kPositive}, {{1}, kPositive}, {{1}, kPositive},
      {{1}, kNegative},  // 3 vs 1: one unavoidable error.
      {{-1}, kNegative},
  };
  MinErrorResult result = MinimizeErrors(examples);
  EXPECT_EQ(result.errors, 1u);
}

TEST(MinErrorTest, EpsilonThresholds) {
  TrainingCollection examples = {
      {{1, 1}, kPositive},
      {{-1, -1}, kPositive},
      {{1, -1}, kNegative},
      {{-1, 1}, kNegative},
  };
  EXPECT_FALSE(IsSeparableWithError(examples, 0.0));
  EXPECT_FALSE(IsSeparableWithError(examples, 0.2));   // Budget 0.8 < 1.
  EXPECT_TRUE(IsSeparableWithError(examples, 0.25));   // Budget 1.
  EXPECT_TRUE(IsSeparableWithError(examples, 0.49));
}

// Property test: min-error optimum is 0 iff LP says separable; and the
// optimum never exceeds the pocket-perceptron error.
TEST(MinErrorPropertyTest, ConsistentWithLpAndHeuristic) {
  std::mt19937_64 rng(31);
  for (int trial = 0; trial < 40; ++trial) {
    TrainingCollection examples;
    int n = 2 + static_cast<int>(rng() % 2);
    int m = 4 + static_cast<int>(rng() % 6);
    for (int i = 0; i < m; ++i) {
      FeatureVector v;
      for (int j = 0; j < n; ++j) v.push_back(rng() % 2 == 0 ? 1 : -1);
      examples.emplace_back(v, rng() % 2 == 0 ? kPositive : kNegative);
    }
    MinErrorResult exact = MinimizeErrors(examples);
    EXPECT_EQ(exact.errors == 0, IsLinearlySeparable(examples));
    auto [pocket, pocket_errors] = PocketPerceptron(examples);
    EXPECT_LE(exact.errors, pocket_errors);
    EXPECT_EQ(pocket.CountErrors(examples), pocket_errors);
  }
}

TEST(PerceptronTest, FindsPerfectSeparatorOnSeparableData) {
  TrainingCollection examples;
  std::mt19937_64 rng(37);
  for (int i = 0; i < 40; ++i) {
    FeatureVector v;
    for (int j = 0; j < 4; ++j) v.push_back(rng() % 2 == 0 ? 1 : -1);
    // Separable by majority vote with a +2 threshold margin trick:
    int sum = v[0] + v[1] + v[2] + v[3];
    examples.emplace_back(v, sum >= 0 ? kPositive : kNegative);
  }
  auto [clf, errors] = PocketPerceptron(examples);
  EXPECT_EQ(errors, 0u);
  EXPECT_EQ(clf.CountErrors(examples), 0u);
}

}  // namespace
}  // namespace featsep
