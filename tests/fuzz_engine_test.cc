// Tests for the coverage-guided fuzzing engine: the coverage map
// (testing/coverage.h), the persistent corpus format (testing/corpus.h),
// the structure-aware mutators (testing/mutate.h), and the Fourier–Motzkin
// reference LP oracle (testing/reference_lp.h).

#include <cstdint>
#include <filesystem>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "linsep/separability_lp.h"
#include "linsep/simplex.h"
#include "testing/corpus.h"
#include "testing/coverage.h"
#include "testing/fuzz.h"
#include "testing/instance.h"
#include "testing/mutate.h"
#include "testing/reference_lp.h"
#include "workload/generators.h"

namespace featsep {
namespace {

using ::featsep::testing::CheckFuzzInstance;
using ::featsep::testing::Corpus;
using ::featsep::testing::CoverageBucket;
using ::featsep::testing::CoverageEdge;
using ::featsep::testing::CoverageEdgeName;
using ::featsep::testing::CoverageEdges;
using ::featsep::testing::CoverageMap;
using ::featsep::testing::CoverageSnapshot;
using ::featsep::testing::DeserializeFuzzInstance;
using ::featsep::testing::FuzzConfig;
using ::featsep::testing::FuzzInstance;
using ::featsep::testing::GenerateFuzzInstance;
using ::featsep::testing::MutateFuzzInstance;
using ::featsep::testing::PropertyCheck;
using ::featsep::testing::RefIsLinearlySeparable;
using ::featsep::testing::RefLpOutcome;
using ::featsep::testing::RefSolveLpValue;
using ::featsep::testing::ResetCoverage;
using ::featsep::testing::SerializeFuzzInstance;
using ::featsep::testing::SetCoverageEnabled;
using ::featsep::testing::SnapshotCoverage;

constexpr FuzzConfig kAllConfigs[] = {
    FuzzConfig::kHom,       FuzzConfig::kEval,     FuzzConfig::kContainment,
    FuzzConfig::kCore,      FuzzConfig::kGhw,      FuzzConfig::kSep,
    FuzzConfig::kQbe,       FuzzConfig::kCoverGame, FuzzConfig::kDimension,
    FuzzConfig::kLinsep,
};

// ---------------------------------------------------------------------------
// Coverage probes and edge bookkeeping.

TEST(CoverageTest, DisabledProbesStayZero) {
  SetCoverageEnabled(false);
  ResetCoverage();
  // A hom instance drives the instrumented kernel; with coverage off the
  // counters must not move.
  FuzzInstance instance = GenerateFuzzInstance(FuzzConfig::kHom, 5);
  CheckFuzzInstance(instance);
  EXPECT_EQ(SnapshotCoverage().total(), 0u);
}

TEST(CoverageTest, EnabledProbesCount) {
  ResetCoverage();
  SetCoverageEnabled(true);
  FuzzInstance instance = GenerateFuzzInstance(FuzzConfig::kHom, 5);
  PropertyCheck check = CheckFuzzInstance(instance);
  SetCoverageEnabled(false);
  EXPECT_FALSE(check.has_value());
  CoverageSnapshot snapshot = SnapshotCoverage();
  EXPECT_GT(snapshot.total(), 0u);
  std::vector<CoverageEdge> edges = CoverageEdges(snapshot);
  EXPECT_FALSE(edges.empty());
  EXPECT_TRUE(std::is_sorted(edges.begin(), edges.end()));
  for (CoverageEdge edge : edges) {
    EXPECT_FALSE(CoverageEdgeName(edge).empty());
  }
  ResetCoverage();
  EXPECT_EQ(SnapshotCoverage().total(), 0u);
}

TEST(CoverageTest, BucketsSeparateShallowFromDeep) {
  EXPECT_EQ(CoverageBucket(1), 0u);
  EXPECT_EQ(CoverageBucket(2), 1u);
  EXPECT_EQ(CoverageBucket(3), 2u);
  EXPECT_EQ(CoverageBucket(4), 3u);
  EXPECT_EQ(CoverageBucket(7), 3u);
  EXPECT_EQ(CoverageBucket(8), 4u);
  EXPECT_EQ(CoverageBucket(1023), 10u);
  EXPECT_EQ(CoverageBucket(1024), 11u);
  EXPECT_EQ(CoverageBucket(1u << 20), 15u);
  // Monotone nondecreasing overall.
  std::size_t previous = 0;
  for (std::uint64_t count = 1; count < (1u << 16); ++count) {
    std::size_t bucket = CoverageBucket(count);
    EXPECT_GE(bucket, previous);
    previous = bucket;
  }
}

TEST(CoverageTest, MapAdmitsOnlyNewEdges) {
  CoverageMap map;
  CoverageSnapshot snapshot;
  snapshot.counts[0] = 1;
  snapshot.counts[3] = 100;
  std::vector<CoverageEdge> fresh = map.MergeNew(snapshot);
  EXPECT_EQ(fresh.size(), 2u);
  EXPECT_TRUE(map.Covers(fresh));
  EXPECT_EQ(map.num_edges(), 2u);
  // Identical signature: nothing new.
  EXPECT_TRUE(map.MergeNew(snapshot).empty());
  // Same site, different bucket: one new edge.
  snapshot.counts[0] = 2;
  EXPECT_EQ(map.MergeNew(snapshot).size(), 1u);
  EXPECT_EQ(map.num_edges(), 3u);
}

// ---------------------------------------------------------------------------
// Corpus serialization.

TEST(CorpusTest, SerializationReachesFixedPoint) {
  for (FuzzConfig config : kAllConfigs) {
    for (std::uint64_t seed = 0; seed < 12; ++seed) {
      FuzzInstance generated = GenerateFuzzInstance(config, seed);
      std::string first = SerializeFuzzInstance(generated);
      auto reloaded = DeserializeFuzzInstance(first);
      ASSERT_TRUE(reloaded.ok())
          << first << "\n" << reloaded.error().message();
      // Isolated domain values (in no fact) do not survive a round trip, so
      // the first reserialization may differ; after that the text must be a
      // fixed point.
      std::string second = SerializeFuzzInstance(reloaded.value());
      auto again = DeserializeFuzzInstance(second);
      ASSERT_TRUE(again.ok()) << second << "\n" << again.error().message();
      EXPECT_EQ(second, SerializeFuzzInstance(again.value()))
          << "config " << static_cast<int>(config) << " seed " << seed;
    }
  }
}

TEST(CorpusTest, ReloadedInstancesStillSatisfyProperties) {
  for (FuzzConfig config : kAllConfigs) {
    for (std::uint64_t seed = 0; seed < 8; ++seed) {
      FuzzInstance generated = GenerateFuzzInstance(config, seed);
      auto reloaded =
          DeserializeFuzzInstance(SerializeFuzzInstance(generated));
      ASSERT_TRUE(reloaded.ok());
      PropertyCheck check = CheckFuzzInstance(reloaded.value());
      EXPECT_FALSE(check.has_value())
          << check->property << ": " << check->detail;
    }
  }
}

TEST(CorpusTest, RejectsMalformedText) {
  EXPECT_FALSE(DeserializeFuzzInstance("").ok());
  EXPECT_FALSE(DeserializeFuzzInstance("hello world\n").ok());
  EXPECT_FALSE(DeserializeFuzzInstance("config nosuch\n").ok());
  // kMixed never names a concrete instance.
  EXPECT_FALSE(DeserializeFuzzInstance("config mixed\n").ok());
  // Value-referencing directives need their database first.
  EXPECT_FALSE(DeserializeFuzzInstance("config core\nfrozen v0\n").ok());
  EXPECT_FALSE(
      DeserializeFuzzInstance("config hom\n[db_a]\nrelation R 1\n").ok())
      << "unterminated database section must not parse";
}

TEST(CorpusTest, PersistsAndReloadsFromDisk) {
  std::filesystem::path dir =
      std::filesystem::temp_directory_path() / "featsep_corpus_test";
  std::filesystem::remove_all(dir);
  {
    Corpus corpus(dir.string());
    for (std::uint64_t seed = 0; seed < 5; ++seed) {
      auto added =
          corpus.Add(GenerateFuzzInstance(FuzzConfig::kCoverGame, seed));
      ASSERT_TRUE(added.ok()) << added.error().message();
      EXPECT_FALSE(corpus.path(added.value()).empty());
    }
    EXPECT_EQ(corpus.size(), 5u);
  }
  Corpus reloaded(dir.string());
  std::vector<std::string> errors;
  std::size_t loaded = reloaded.Load(&errors);
  EXPECT_TRUE(errors.empty()) << errors.front();
  // Distinct seeds may collapse to identical serializations (same content
  // hash, one file); every file that exists must load.
  EXPECT_GT(loaded, 0u);
  EXPECT_EQ(loaded, reloaded.size());
  for (std::size_t i = 0; i < reloaded.size(); ++i) {
    EXPECT_EQ(reloaded.instance(i).config, FuzzConfig::kCoverGame);
  }
  std::filesystem::remove_all(dir);
}

// ---------------------------------------------------------------------------
// Mutation.

TEST(MutateTest, DeterministicInRngState) {
  for (FuzzConfig config : kAllConfigs) {
    FuzzInstance base = GenerateFuzzInstance(config, 3);
    WorkloadRng rng1(17);
    WorkloadRng rng2(17);
    EXPECT_EQ(SerializeFuzzInstance(MutateFuzzInstance(base, rng1)),
              SerializeFuzzInstance(MutateFuzzInstance(base, rng2)));
  }
}

TEST(MutateTest, ChainsStaySanitizedAndLawful) {
  for (FuzzConfig config : kAllConfigs) {
    for (std::uint64_t seed = 0; seed < 4; ++seed) {
      FuzzInstance instance = GenerateFuzzInstance(config, seed);
      WorkloadRng rng(seed * 31 + 7);
      for (int round = 0; round < 6; ++round) {
        instance = MutateFuzzInstance(instance, rng);
        ASSERT_EQ(instance.config, config);
        // Every mutant must serialize, reload, and pass the property
        // drivers — the fuzzer's soundness depends on mutants being
        // lawful inputs, not just the generator's.
        auto reloaded =
            DeserializeFuzzInstance(SerializeFuzzInstance(instance));
        ASSERT_TRUE(reloaded.ok()) << reloaded.error().message();
        PropertyCheck check = CheckFuzzInstance(instance);
        EXPECT_FALSE(check.has_value())
            << check->property << ": " << check->detail;
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Fourier–Motzkin reference LP.

Rational Q(std::int64_t n) { return Rational(n); }

TEST(ReferenceLpTest, BoxOptimum) {
  // max x1 + x2 s.t. x1 <= 2, x2 <= 3, x >= 0.
  LpProblem lp;
  lp.a = {{Q(1), Q(0)}, {Q(0), Q(1)}};
  lp.b = {Q(2), Q(3)};
  lp.c = {Q(1), Q(1)};
  RefLpOutcome outcome = RefSolveLpValue(lp);
  ASSERT_EQ(outcome.status, LpStatus::kOptimal);
  EXPECT_EQ(outcome.objective, Q(5));
  LpSolution simplex = SolveLp(lp);
  ASSERT_EQ(simplex.status, LpStatus::kOptimal);
  EXPECT_EQ(simplex.objective, outcome.objective);
}

TEST(ReferenceLpTest, DetectsInfeasibility) {
  // x1 >= 1 and x1 <= 0 cannot both hold.
  LpProblem lp;
  lp.a = {{Q(-1)}, {Q(1)}};
  lp.b = {Q(-1), Q(0)};
  lp.c = {Q(1)};
  EXPECT_EQ(RefSolveLpValue(lp).status, LpStatus::kInfeasible);
  EXPECT_EQ(SolveLp(lp).status, LpStatus::kInfeasible);
}

TEST(ReferenceLpTest, DetectsUnboundedness) {
  // max x1 with only x2 constrained.
  LpProblem lp;
  lp.a = {{Q(0), Q(1)}};
  lp.b = {Q(1)};
  lp.c = {Q(1), Q(0)};
  EXPECT_EQ(RefSolveLpValue(lp).status, LpStatus::kUnbounded);
  EXPECT_EQ(SolveLp(lp).status, LpStatus::kUnbounded);
}

TEST(ReferenceLpTest, FractionalOptimum) {
  // max x1 s.t. 2*x1 <= 1: optimum 1/2, exercising non-integer rationals.
  LpProblem lp;
  lp.a = {{Q(2)}};
  lp.b = {Q(1)};
  lp.c = {Q(1)};
  RefLpOutcome outcome = RefSolveLpValue(lp);
  ASSERT_EQ(outcome.status, LpStatus::kOptimal);
  EXPECT_EQ(outcome.objective, Q(1) / Q(2));
}

TEST(ReferenceLpTest, SeparabilityAgreesWithSimplexOnXor) {
  // Single feature, consistent labels: separable.
  TrainingCollection separable = {{{1}, kPositive}, {{-1}, kNegative}};
  EXPECT_TRUE(RefIsLinearlySeparable(separable));
  EXPECT_TRUE(IsLinearlySeparable(separable));
  // XOR over two features: famously not.
  TrainingCollection xor_examples = {{{1, 1}, kPositive},
                                     {{-1, -1}, kPositive},
                                     {{1, -1}, kNegative},
                                     {{-1, 1}, kNegative}};
  EXPECT_FALSE(RefIsLinearlySeparable(xor_examples));
  EXPECT_FALSE(IsLinearlySeparable(xor_examples));
  // Contradictory labels on the same vector: never separable.
  TrainingCollection contradictory = {{{1}, kPositive}, {{1}, kNegative}};
  EXPECT_FALSE(RefIsLinearlySeparable(contradictory));
  EXPECT_FALSE(IsLinearlySeparable(contradictory));
  // Empty collections are vacuously separable.
  EXPECT_TRUE(RefIsLinearlySeparable({}));
  EXPECT_TRUE(IsLinearlySeparable({}));
}

}  // namespace
}  // namespace featsep
