#include "testing/faults.h"

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <new>
#include <string>

#include <gtest/gtest.h>

#include "cq/homomorphism.h"
#include "test_util.h"
#include "util/budget.h"
#include "util/parallel.h"

namespace featsep {
namespace testing {
namespace {

// Drives the probe directly: each call is one visit of kHomNode, exactly
// what an instrumented kernel event does.
void VisitHomNode() { FEATSEP_FAULT_POINT(kHomNode); }

TEST(FaultsTest, DisarmedProbeIsInert) {
  DisarmFaults();
  EXPECT_FALSE(FaultArmed());
  for (int i = 0; i < 100; ++i) VisitHomNode();  // Must not throw or count.
}

TEST(FaultsTest, FiresExactlyOnceAtTriggerVisit) {
  ExecutionBudget budget;
  FaultSpec spec;
  spec.site = CoverageSite::kHomNode;
  spec.kind = FaultKind::kCancel;
  spec.trigger_visit = 5;
  ScopedFault fault(spec, &budget);
  EXPECT_TRUE(FaultArmed());
  for (int i = 0; i < 4; ++i) VisitHomNode();
  EXPECT_EQ(FaultSiteVisits(), 4u);
  EXPECT_EQ(FaultFireCount(), 0u);
  EXPECT_FALSE(budget.cancel_requested());
  VisitHomNode();  // The 5th visit trips.
  EXPECT_EQ(FaultFireCount(), 1u);
  EXPECT_TRUE(budget.cancel_requested());
  // Later visits keep counting but never re-fire.
  for (int i = 0; i < 10; ++i) VisitHomNode();
  EXPECT_EQ(FaultSiteVisits(), 15u);
  EXPECT_EQ(FaultFireCount(), 1u);
}

TEST(FaultsTest, OtherSitesDoNotCount) {
  ExecutionBudget budget;
  FaultSpec spec;
  spec.site = CoverageSite::kSimplexPivot;
  spec.trigger_visit = 1;
  ScopedFault fault(spec, &budget);
  for (int i = 0; i < 20; ++i) VisitHomNode();
  EXPECT_EQ(FaultSiteVisits(), 0u);
  EXPECT_EQ(FaultFireCount(), 0u);
}

TEST(FaultsTest, CancelKindOnlyRaisesTheFlag) {
  // kCancel mirrors a real abandon: the flag goes up, but the outcome
  // latches at the victim's NEXT budget check — so a cancel landing on the
  // final kernel event legitimately lets the run complete.
  ExecutionBudget budget;
  FaultSpec spec;
  spec.kind = FaultKind::kCancel;
  ScopedFault fault(spec, &budget);
  VisitHomNode();
  EXPECT_TRUE(budget.cancel_requested());
  EXPECT_FALSE(budget.Interrupted());
  EXPECT_FALSE(budget.Charge());
  EXPECT_EQ(budget.outcome(), BudgetOutcome::kCancelled);
}

TEST(FaultsTest, TimeoutKindLatchesImmediately) {
  ExecutionBudget budget;
  FaultSpec spec;
  spec.kind = FaultKind::kTimeout;
  ScopedFault fault(spec, &budget);
  VisitHomNode();
  EXPECT_TRUE(budget.Interrupted());
  EXPECT_EQ(budget.outcome(), BudgetOutcome::kTimedOut);
}

TEST(FaultsTest, BadAllocKindThrows) {
  FaultSpec spec;
  spec.kind = FaultKind::kBadAlloc;
  spec.trigger_visit = 3;
  ScopedFault fault(spec, /*budget=*/nullptr);
  VisitHomNode();
  VisitHomNode();
  EXPECT_THROW(VisitHomNode(), std::bad_alloc);
  EXPECT_EQ(FaultFireCount(), 1u);
  VisitHomNode();  // Fires only once; later visits are harmless.
}

TEST(FaultsTest, CancelWithNullBudgetCountsButIsANoOp) {
  FaultSpec spec;
  spec.kind = FaultKind::kCancel;
  ScopedFault fault(spec, /*budget=*/nullptr);
  VisitHomNode();
  EXPECT_EQ(FaultFireCount(), 1u);
}

TEST(FaultsTest, ScopedFaultDisarmsOnUnwind) {
  FaultSpec spec;
  spec.kind = FaultKind::kBadAlloc;
  try {
    ScopedFault fault(spec, nullptr);
    VisitHomNode();
    FAIL() << "expected bad_alloc";
  } catch (const std::bad_alloc&) {
  }
  EXPECT_FALSE(FaultArmed());
  // Counters survive disarm for post-mortem inspection until re-armed.
  EXPECT_EQ(FaultFireCount(), 1u);
  ExecutionBudget budget;
  ArmFault(FaultSpec{}, &budget);
  EXPECT_EQ(FaultFireCount(), 0u);  // Re-arming resets.
  DisarmFaults();
}

TEST(FaultsTest, RearmingResetsVisitCounter) {
  ExecutionBudget budget;
  {
    ScopedFault fault(FaultSpec{}, &budget);
    for (int i = 0; i < 7; ++i) VisitHomNode();
    EXPECT_EQ(FaultSiteVisits(), 7u);
  }
  ExecutionBudget fresh;
  ScopedFault fault(FaultSpec{}, &fresh);
  EXPECT_EQ(FaultSiteVisits(), 0u);
}

TEST(FaultsTest, BadAllocUnwindsOutOfTheHomKernel) {
  // End-to-end: an allocation failure injected at the first search node must
  // propagate out of FindHomomorphism as std::bad_alloc without crashing.
  std::shared_ptr<const Schema> schema = GraphSchema();
  Database from(schema);
  AddPath(from, "p", 3);
  Database to(schema);
  AddCycle(to, "c", 4);
  FaultSpec spec;
  spec.site = CoverageSite::kHomNode;
  spec.kind = FaultKind::kBadAlloc;
  spec.trigger_visit = 1;
  ScopedFault fault(spec, nullptr);
  EXPECT_THROW(FindHomomorphism(from, to), std::bad_alloc);
  EXPECT_EQ(FaultFireCount(), 1u);
}

TEST(FaultsTest, TimeoutInterruptsTheHomKernel) {
  // A forced deadline expiry at the first node must surface as kExhausted
  // with outcome kTimedOut — never as a definitive kNone.
  std::shared_ptr<const Schema> schema = GraphSchema();
  Database from(schema);
  AddPath(from, "p", 4);
  Database to(schema);
  AddCycle(to, "c", 5);  // A 4-path maps into any cycle: uninterrupted kFound.
  ExecutionBudget budget;
  HomOptions options;
  options.budget = &budget;
  FaultSpec spec;
  spec.site = CoverageSite::kHomNode;
  spec.kind = FaultKind::kTimeout;
  spec.trigger_visit = 1;
  HomResult interrupted;
  {
    ScopedFault fault(spec, &budget);
    interrupted = FindHomomorphism(from, to, {}, options);
  }
  EXPECT_EQ(interrupted.status, HomStatus::kExhausted);
  EXPECT_EQ(interrupted.outcome, BudgetOutcome::kTimedOut);
  // Resume: the disarmed rerun with a fresh budget completes and finds the
  // witness the interrupted run was denied.
  ExecutionBudget fresh;
  HomOptions clean;
  clean.budget = &fresh;
  HomResult done = FindHomomorphism(from, to, {}, clean);
  EXPECT_EQ(done.status, HomStatus::kFound);
  EXPECT_EQ(done.outcome, BudgetOutcome::kCompleted);
}

TEST(FaultsTest, BadAllocPropagatesThroughParallelFor) {
  // The fired fault throws on exactly one worker; ParallelFor must hand that
  // single bad_alloc to the caller and stop the siblings.
  FaultSpec spec;
  spec.site = CoverageSite::kHomNode;
  spec.kind = FaultKind::kBadAlloc;
  spec.trigger_visit = 50;
  ScopedFault fault(spec, nullptr);
  std::atomic<std::size_t> visited{0};
  EXPECT_THROW(ParallelFor(4, 100000,
                           [&](std::size_t) {
                             visited.fetch_add(1, std::memory_order_relaxed);
                             VisitHomNode();
                           }),
               std::bad_alloc);
  EXPECT_EQ(FaultFireCount(), 1u);
  EXPECT_LT(visited.load(), 100000u / 2);
}

}  // namespace
}  // namespace testing
}  // namespace featsep
