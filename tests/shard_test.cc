#include "serve/shard_protocol.h"

#include <chrono>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#ifndef _WIN32
#include <unistd.h>
#endif

#include "core/statistic.h"
#include "cq/evaluation.h"
#include "serve/disk_cache.h"
#include "serve/eval_service.h"
#include "serve/supervisor.h"
#include "serve/wire_format.h"
#include "test_util.h"
#include "util/fs_env.h"

namespace featsep {
namespace {

namespace fs = std::filesystem;

using ::featsep::testing::ExpiredBudget;
using ::featsep::testing::MakeWorld;
using ::featsep::testing::OutInFeatures;
using serve::ClaimShard;
using serve::CoordinateShardJob;
using serve::DiskResultCache;
using serve::EvalService;
using serve::EvaluateClaimedShard;
using serve::LoadShardJob;
using serve::PublishShardJob;
using serve::ReclaimExpiredLeases;
using serve::ServeOptions;
using serve::ShardCoordinatorOptions;
using serve::ServeStats;
using serve::ShardJob;
using serve::ShardJobDone;
using serve::ShardMergeResult;
using serve::ShardIoStats;
using serve::ShardWorkerOptions;
using serve::ShardWorkerStats;
using serve::WorkerExitRestartable;
using serve::WorkerProcessOptions;
using serve::WorkerSupervisor;
using serve::WorkerSupervisorStats;
using serve::WorkOnShardJob;

class TempDir {
 public:
  explicit TempDir(const std::string& tag) {
    std::uint64_t pid = 0;
#ifndef _WIN32
    pid = static_cast<std::uint64_t>(::getpid());
#endif
    path_ = fs::temp_directory_path() / (tag + "-" + std::to_string(pid));
    std::error_code ec;
    fs::remove_all(path_, ec);
    fs::create_directories(path_);
  }
  ~TempDir() {
    std::error_code ec;
    fs::remove_all(path_, ec);
  }
  std::string str() const { return path_.string(); }
  const fs::path& path() const { return path_; }

 private:
  fs::path path_;
};

std::vector<std::string> FeatureStrings() {
  std::vector<std::string> strings;
  for (const ConjunctiveQuery& feature : OutInFeatures()) {
    strings.push_back(feature.ToString());
  }
  return strings;
}

/// The in-memory job a coordinator builds around a live database.
ShardJob LocalJob(const Database& db, std::size_t entity_block,
                  const std::string& cache_dir) {
  ShardJob job;
  job.db = &db;
  job.features = OutInFeatures();
  job.feature_strings = FeatureStrings();
  job.digest = db.ContentDigest();
  job.entity_block = entity_block;
  job.cache_dir = cache_dir;
  job.entities = db.Entities();
  return job;
}

/// flags[feature][entity] from plain serial evaluation — the reference
/// every merge must equal bit-for-bit.
std::vector<std::vector<char>> SerialFlags(const Database& db) {
  std::vector<std::vector<char>> flags;
  for (const ConjunctiveQuery& feature : OutInFeatures()) {
    CqEvaluator evaluator(feature);
    std::vector<char> row;
    for (Value e : db.Entities()) {
      row.push_back(evaluator.SelectsEntity(db, e) ? 1 : 0);
    }
    flags.push_back(std::move(row));
  }
  return flags;
}

TEST(ShardProtocolTest, PublishLoadRoundTrip) {
  TempDir dir("featsep-shard-roundtrip");
  Database db = MakeWorld();
  Result<std::size_t> shards =
      PublishShardJob(dir.str(), db, FeatureStrings(), 2, "/some/cache");
  ASSERT_TRUE(shards.ok()) << shards.error().message();
  // 3 entities, block 2 → 2 blocks per feature, 2 features.
  EXPECT_EQ(shards.value(), 4u);

  Result<ShardJob> loaded = LoadShardJob(dir.str());
  ASSERT_TRUE(loaded.ok()) << loaded.error().message();
  const ShardJob& job = loaded.value();
  EXPECT_EQ(job.digest, db.ContentDigest());
  EXPECT_EQ(job.feature_strings, FeatureStrings());
  EXPECT_EQ(job.features.size(), 2u);
  EXPECT_EQ(job.entity_block, 2u);
  EXPECT_EQ(job.cache_dir, "/some/cache");
  EXPECT_EQ(job.entities.size(), db.Entities().size());
  EXPECT_EQ(job.num_shards(), 4u);
  // The worker's round-tripped database answers like the original.
  EXPECT_EQ(SerialFlags(*job.db), SerialFlags(db));
}

TEST(ShardProtocolTest, TamperedJobSpecIsRefused) {
  TempDir dir("featsep-shard-tamper");
  Database db = MakeWorld();
  ASSERT_TRUE(PublishShardJob(dir.str(), db, FeatureStrings(), 2, "").ok());
  const fs::path spec = dir.path() / "job.fsj";
  std::string bytes;
  {
    std::ifstream in(spec, std::ios::binary);
    bytes.assign(std::istreambuf_iterator<char>(in), {});
  }
  bytes[bytes.size() / 2] ^= 0x01;
  {
    std::ofstream out(spec, std::ios::binary | std::ios::trunc);
    out << bytes;
  }
  EXPECT_FALSE(LoadShardJob(dir.str()).ok());
}

TEST(ShardProtocolTest, DigestContentDisagreementIsRefused) {
  // A job whose checksum is VALID but whose spelled digest does not match
  // the database content must be refused: evaluating under the wrong key
  // would poison every shared cache. (Simulates a coordinator whose digest
  // computation disagrees — the bug class this PR fixes.)
  TempDir dir("featsep-shard-digest");
  Database db = MakeWorld();
  ASSERT_TRUE(PublishShardJob(dir.str(), db, FeatureStrings(), 2, "").ok());
  const fs::path spec = dir.path() / "job.fsj";
  std::string bytes;
  {
    std::ifstream in(spec, std::ios::binary);
    bytes.assign(std::istreambuf_iterator<char>(in), {});
  }
  // Replace the digest line's hex with a different value and re-checksum.
  const std::string good = serve::wire::DigestHex(db.ContentDigest());
  const std::string bad = serve::wire::DigestHex(db.ContentDigest() ^ 1);
  const std::size_t at = bytes.find(good);
  ASSERT_NE(at, std::string::npos);
  bytes.replace(at, good.size(), bad);
  const std::size_t checksum_at = bytes.rfind("checksum ");
  ASSERT_NE(checksum_at, std::string::npos);
  bytes = serve::wire::WithChecksum(bytes.substr(0, checksum_at));
  {
    std::ofstream out(spec, std::ios::binary | std::ios::trunc);
    out << bytes;
  }
  Result<ShardJob> loaded = LoadShardJob(dir.str());
  ASSERT_FALSE(loaded.ok());
  // The exact message is a contract: featsep_worker keys its structured
  // digest-refusal exit code (kWorkerExitDigestRefusal, poison — never
  // restarted) off a byte-equal comparison with it.
  EXPECT_EQ(loaded.error().message(),
            std::string(serve::kDigestRefusalMessage));
  EXPECT_FALSE(WorkerExitRestartable(serve::kWorkerExitDigestRefusal));
}

TEST(ShardProtocolTest, CoordinatorAloneCompletesAndMatchesSerial) {
  TempDir dir("featsep-shard-solo");
  Database db = MakeWorld();
  ASSERT_TRUE(PublishShardJob(dir.str(), db, FeatureStrings(), 1, "").ok());
  ShardJob job = LocalJob(db, 1, "");

  Result<ShardMergeResult> merged = CoordinateShardJob(dir.str(), job);
  ASSERT_TRUE(merged.ok()) << merged.error().message();
  EXPECT_EQ(merged.value().flags, SerialFlags(db));
  EXPECT_EQ(merged.value().local_shards, job.num_shards());
  EXPECT_EQ(merged.value().remote_shards, 0u);
  // On a healthy filesystem nothing is ever quarantined or dropped.
  EXPECT_EQ(merged.value().quarantined_shards, 0u);
  EXPECT_EQ(merged.value().corrupt_results, 0u);
  EXPECT_TRUE(ShardJobDone(dir.str()));
}

TEST(ShardProtocolTest, WorkerCompletesJobAndCoordinatorOnlyMerges) {
  TempDir dir("featsep-shard-worker");
  Database db = MakeWorld();
  ASSERT_TRUE(PublishShardJob(dir.str(), db, FeatureStrings(), 1, "").ok());

  // The "remote process": loads the job from disk (own database instance,
  // own value ids) and completes every shard.
  Result<ShardJob> loaded = LoadShardJob(dir.str());
  ASSERT_TRUE(loaded.ok()) << loaded.error().message();
  std::thread worker([&] {
    Result<ShardWorkerStats> stats = WorkOnShardJob(dir.str(), loaded.value());
    ASSERT_TRUE(stats.ok()) << stats.error().message();
    EXPECT_EQ(stats.value().shards_completed, loaded.value().num_shards());
  });

  ShardJob job = LocalJob(db, 1, "");
  ShardCoordinatorOptions options;
  options.evaluate_locally = false;  // Merge-only coordinator.
  Result<ShardMergeResult> merged = CoordinateShardJob(dir.str(), job, options);
  worker.join();
  ASSERT_TRUE(merged.ok()) << merged.error().message();
  EXPECT_EQ(merged.value().flags, SerialFlags(db));
  EXPECT_EQ(merged.value().local_shards, 0u);
  EXPECT_EQ(merged.value().remote_shards, job.num_shards());
}

TEST(ShardProtocolTest, ExpiredLeaseIsReclaimed) {
  TempDir dir("featsep-shard-lease");
  Database db = MakeWorld();
  ASSERT_TRUE(PublishShardJob(dir.str(), db, FeatureStrings(), 1, "").ok());
  ShardJob job = LocalJob(db, 1, "");

  // A worker claims shard 0 and dies (no result, no lease renewal).
  std::optional<std::size_t> claimed = ClaimShard(dir.str(), job);
  ASSERT_TRUE(claimed.has_value());
  EXPECT_EQ(*claimed, 0u);
  EXPECT_FALSE(fs::exists(dir.path() / "todo" / "s0"));
  ASSERT_TRUE(fs::exists(dir.path() / "leases" / "s0"));
  // Backdate the lease beyond any window.
  fs::last_write_time(dir.path() / "leases" / "s0",
                      fs::file_time_type::clock::now() -
                          std::chrono::hours(1));

  // A fresh lease is NOT reclaimed...
  std::optional<std::size_t> second = ClaimShard(dir.str(), job);
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(ReclaimExpiredLeases(dir.str(), job,
                                 std::chrono::milliseconds(60000)),
            1u);
  // ...the expired one is, and becomes claimable again.
  EXPECT_TRUE(fs::exists(dir.path() / "todo" / "s0"));
  EXPECT_TRUE(fs::exists(dir.path() / "leases" /
                         ("s" + std::to_string(*second))));

  // The whole job still completes and matches serial.
  Result<ShardMergeResult> merged = CoordinateShardJob(dir.str(), job);
  ASSERT_TRUE(merged.ok());
  EXPECT_EQ(merged.value().flags, SerialFlags(db));
}

TEST(ShardProtocolTest, FinishedShardsStaleLeaseIsDroppedNotRequeued) {
  TempDir dir("featsep-shard-stale");
  Database db = MakeWorld();
  ASSERT_TRUE(PublishShardJob(dir.str(), db, FeatureStrings(), 1, "").ok());
  ShardJob job = LocalJob(db, 1, "");
  std::optional<std::size_t> claimed = ClaimShard(dir.str(), job);
  ASSERT_TRUE(claimed.has_value());
  ASSERT_TRUE(EvaluateClaimedShard(dir.str(), job, *claimed).ok());
  // The worker died after publishing its result but a stale lease file
  // reappears (e.g. it was mid-renewal): reclaim must drop it, not re-run
  // the finished shard.
  { std::ofstream lease(dir.path() / "leases" / "s0"); }
  EXPECT_EQ(ReclaimExpiredLeases(dir.str(), job, std::chrono::milliseconds(0)),
            0u);
  EXPECT_FALSE(fs::exists(dir.path() / "leases" / "s0"));
  EXPECT_FALSE(fs::exists(dir.path() / "todo" / "s0"));
}

TEST(ShardProtocolTest, CorruptResultIsRequeuedAndRerun) {
  TempDir dir("featsep-shard-corrupt");
  Database db = MakeWorld();
  ASSERT_TRUE(PublishShardJob(dir.str(), db, FeatureStrings(), 1, "").ok());
  ShardJob job = LocalJob(db, 1, "");

  // A malicious/diseased worker published garbage for shard 0 and "claimed"
  // it done. The coordinator must never trust it: the result is dropped,
  // the shard re-run, and the merge still bit-identical to serial.
  { std::ofstream todo(dir.path() / "todo" / "s0"); }
  fs::remove(dir.path() / "todo" / "s0");
  {
    std::ofstream result(dir.path() / "results" / "s0.fsr",
                         std::ios::binary | std::ios::trunc);
    result << "featsep-shard-result 1\nutter nonsense\n";
  }
  Result<ShardMergeResult> merged = CoordinateShardJob(dir.str(), job);
  ASSERT_TRUE(merged.ok()) << merged.error().message();
  EXPECT_EQ(merged.value().flags, SerialFlags(db));
}

TEST(ShardProtocolTest, WorkersWriteCompletedFeaturesThroughDiskCache) {
  TempDir work("featsep-shard-wt-work");
  TempDir cache("featsep-shard-wt-cache");
  Database db = MakeWorld();
  // One block per feature (block ≥ entity count): every completed shard
  // completes its feature, so the write-through happens even if the
  // coordinator never merges.
  ASSERT_TRUE(
      PublishShardJob(work.str(), db, FeatureStrings(), 64, cache.str()).ok());
  Result<ShardJob> loaded = LoadShardJob(work.str());
  ASSERT_TRUE(loaded.ok());
  Result<ShardWorkerStats> stats = WorkOnShardJob(work.str(), loaded.value());
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats.value().features_cached, 2u);

  // A restarted EvalService over the same cache dir serves from disk with
  // zero kernel work — the coordinator died, the work still counts.
  ServeOptions options;
  options.cache_dir = cache.str();
  EvalService service(options);
  Statistic statistic(OutInFeatures());
  EXPECT_EQ(service.Matrix(statistic.features(), db), statistic.Matrix(db));
  EXPECT_EQ(service.stats().features_evaluated, 0u);
  EXPECT_EQ(service.stats().disk_hits, 2u);
}

// ---------------------------------------------------------------------------
// EvalService shard mode (ServeOptions::shard_dir).

TEST(EvalServiceShardTest, ShardModeMatchesSerialBitForBit) {
  TempDir work("featsep-svcshard-work");
  TempDir cache("featsep-svcshard-cache");
  Database db = MakeWorld();
  Statistic statistic(OutInFeatures());
  const std::vector<FeatureVector> serial = statistic.Matrix(db);

  ServeOptions options;
  options.shard_dir = work.str();
  options.cache_dir = cache.str();
  options.entity_block = 1;
  EvalService service(options);
  EXPECT_EQ(service.Matrix(statistic.features(), db), serial);
  ServeStats stats = service.stats();
  EXPECT_EQ(stats.shard_jobs, 1u);
  EXPECT_EQ(stats.local_shards + stats.remote_shards,
            statistic.features().size() * db.Entities().size());
  // The job directory is scratch, cleaned up after the merge.
  std::size_t leftover = 0;
  for (const auto& it : fs::directory_iterator(work.path())) {
    (void)it;
    ++leftover;
  }
  EXPECT_EQ(leftover, 0u);

  // Warm call: answered from the LRU, no second job.
  EXPECT_EQ(service.Matrix(statistic.features(), db), serial);
  EXPECT_EQ(service.stats().shard_jobs, 1u);
}

TEST(EvalServiceShardTest, BudgetedRequestsStayInProcess) {
  TempDir work("featsep-svcshard-budget");
  ServeOptions options;
  options.shard_dir = work.str();
  EvalService service(options);
  Database db = MakeWorld();
  ExecutionBudget budget = ExpiredBudget();
  auto answers = service.TryResolve(OutInFeatures(), db, &budget);
  for (const auto& answer : answers) EXPECT_EQ(answer, nullptr);
  EXPECT_EQ(service.stats().shard_jobs, 0u);

  // An unbudgeted retry of the same keys goes through the shard path and
  // produces definitive answers.
  auto retried = service.TryResolve(OutInFeatures(), db, nullptr);
  for (const auto& answer : retried) ASSERT_NE(answer, nullptr);
  EXPECT_EQ(service.stats().shard_jobs, 1u);
}

// ---------------------------------------------------------------------------
// Fault handling: claim/requeue accounting, quarantine, worker supervision.

TEST(ShardProtocolTest, FaultedClaimIsCountedAndNeverTreatedAsAWin) {
  TempDir dir("featsep-shard-claimfault");
  Database db = MakeWorld();
  ASSERT_TRUE(PublishShardJob(dir.str(), db, FeatureStrings(), 1, "").ok());
  FaultFsEnv env(FaultFsOptions{});
  Result<ShardJob> job = LoadShardJob(dir.str(), &env);
  ASSERT_TRUE(job.ok()) << job.error().message();

  // The first candidate's claim rename faults: counted as a claim_error
  // (not a race, not a win) and the scan claims the next shard instead.
  env.FailNext(FsOp::kRename, 1);
  ShardIoStats io;
  std::optional<std::size_t> claimed = ClaimShard(dir.str(), job.value(), &io);
  ASSERT_TRUE(claimed.has_value());
  EXPECT_EQ(io.claim_errors, 1u);
  EXPECT_EQ(io.claim_races, 0u);

  // A fully dead rename path claims nothing, and every fault is counted.
  env.FailNext(FsOp::kRename, 1000);
  ShardIoStats dead;
  EXPECT_FALSE(ClaimShard(dir.str(), job.value(), &dead).has_value());
  EXPECT_GT(dead.claim_errors, 0u);
}

TEST(ShardProtocolTest, RequeueFaultIsSurfacedAndRetriedNextPass) {
  TempDir dir("featsep-shard-requeue");
  Database db = MakeWorld();
  ASSERT_TRUE(PublishShardJob(dir.str(), db, FeatureStrings(), 1, "").ok());
  FaultFsEnv env(FaultFsOptions{});
  Result<ShardJob> job = LoadShardJob(dir.str(), &env);
  ASSERT_TRUE(job.ok()) << job.error().message();
  ShardIoStats claim_io;
  std::optional<std::size_t> claimed =
      ClaimShard(dir.str(), job.value(), &claim_io);
  ASSERT_TRUE(claimed.has_value());

  // The worker "dies" holding the lease, and the requeue rename faults: the
  // failure is surfaced (and the shard reported as failure evidence for
  // quarantine accounting) — a shard must never silently leave the
  // protocol.
  env.FailNext(FsOp::kRename, 1);
  ShardIoStats io;
  std::vector<std::size_t> attempted;
  EXPECT_EQ(ReclaimExpiredLeases(dir.str(), job.value(),
                                 std::chrono::milliseconds(0), &io,
                                 &attempted),
            0u);
  EXPECT_EQ(io.requeue_failures, 1u);
  EXPECT_EQ(attempted, std::vector<std::size_t>{*claimed});

  // Next pass with the fault cleared: the shard returns to todo/ and is
  // claimable again.
  ShardIoStats clean_io;
  std::vector<std::size_t> attempted_again;
  EXPECT_EQ(ReclaimExpiredLeases(dir.str(), job.value(),
                                 std::chrono::milliseconds(0), &clean_io,
                                 &attempted_again),
            1u);
  EXPECT_EQ(clean_io.requeue_failures, 0u);
  EXPECT_EQ(attempted_again, std::vector<std::size_t>{*claimed});
  EXPECT_EQ(ClaimShard(dir.str(), job.value(), nullptr), claimed);
}

TEST(ShardProtocolTest, QuarantineCompletesJobBitIdenticalUnderFaults) {
  // A filesystem sick enough that shards keep failing: after
  // quarantine_after observations each failing shard is pulled out of the
  // protocol and evaluated in-memory, so the job still completes and the
  // merge is still bit-identical to serial.
  TempDir dir("featsep-shard-quarantine");
  Database db = MakeWorld();
  ASSERT_TRUE(PublishShardJob(dir.str(), db, FeatureStrings(), 1, "").ok());
  FaultFsOptions fault;
  fault.seed = 99;
  FaultFsEnv env(fault);
  Result<ShardJob> job = LoadShardJob(dir.str(), &env);  // Loads clean.
  ASSERT_TRUE(job.ok()) << job.error().message();
  job.value().retry.max_attempts = 2;
  env.set_fail_chance(0.85);

  ShardCoordinatorOptions options;
  options.lease = std::chrono::milliseconds(0);
  options.poll = std::chrono::milliseconds(0);
  options.quarantine_after = 2;
  Result<ShardMergeResult> merged =
      CoordinateShardJob(dir.str(), job.value(), options);
  ASSERT_TRUE(merged.ok()) << merged.error().message();
  EXPECT_EQ(merged.value().flags, SerialFlags(db));
  EXPECT_GT(merged.value().quarantined_shards, 0u)
      << "no shard was quarantined despite persistent faults";
}

#ifndef _WIN32

TEST(ShardProtocolTest, CoordinatorSupervisesAFleetForTheJobDuration) {
  TempDir dir("featsep-shard-supervised");
  Database db = MakeWorld();
  ASSERT_TRUE(PublishShardJob(dir.str(), db, FeatureStrings(), 1, "").ok());
  ShardJob job = LocalJob(db, 1, "");

  // The "workers" just sleep: the coordinator evaluates locally, finishes
  // the job, and tears the fleet down on its way out.
  ShardCoordinatorOptions options;
  options.supervise = WorkerProcessOptions{};
  options.supervise->argv = {"/bin/sh", "-c", "sleep 30"};
  options.supervise->num_workers = 2;
  Result<ShardMergeResult> merged =
      CoordinateShardJob(dir.str(), job, options);
  ASSERT_TRUE(merged.ok()) << merged.error().message();
  EXPECT_EQ(merged.value().flags, SerialFlags(db));
  EXPECT_EQ(merged.value().supervisor.spawned, 2u);
  EXPECT_TRUE(ShardJobDone(dir.str()));
}

TEST(WorkerSupervisorTest, RestartsRestartableExitsWithinBudget) {
  WorkerProcessOptions options;
  options.argv = {"/bin/sh", "-c", "exit 4"};  // kWorkerExitIoGiveUp.
  options.num_workers = 2;
  options.max_restarts = 2;
  WorkerSupervisor supervisor(options);
  ASSERT_TRUE(supervisor.Start());
  for (int i = 0; i < 5000 && supervisor.Poll() > 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  WorkerSupervisorStats stats = supervisor.stats();
  EXPECT_EQ(supervisor.live_workers(), 0u);
  // Per slot: the initial spawn plus two restarts, every exit restartable,
  // then the slot is abandoned with its budget spent.
  EXPECT_EQ(stats.spawned, 6u);
  EXPECT_EQ(stats.restarts, 4u);
  EXPECT_EQ(stats.restartable_exits, 6u);
  EXPECT_EQ(stats.restart_budget_exhausted, 2u);
  EXPECT_EQ(stats.poison_exits, 0u);
  EXPECT_EQ(stats.clean_exits, 0u);
}

TEST(WorkerSupervisorTest, PoisonExitsAreNeverRestarted) {
  WorkerProcessOptions options;
  options.argv = {"/bin/sh", "-c", "exit 3"};  // kWorkerExitDigestRefusal.
  options.num_workers = 2;
  options.max_restarts = 3;  // Budget available — but must not be used.
  WorkerSupervisor supervisor(options);
  ASSERT_TRUE(supervisor.Start());
  for (int i = 0; i < 5000 && supervisor.Poll() > 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  WorkerSupervisorStats stats = supervisor.stats();
  EXPECT_EQ(supervisor.live_workers(), 0u);
  EXPECT_EQ(stats.spawned, 2u);
  EXPECT_EQ(stats.restarts, 0u);
  EXPECT_EQ(stats.poison_exits, 2u);
  EXPECT_EQ(stats.restart_budget_exhausted, 0u);
}

TEST(WorkerSupervisorTest, CleanExitsNeedNoRestart) {
  WorkerProcessOptions options;
  options.argv = {"/bin/sh", "-c", "exit 0"};
  options.num_workers = 1;
  WorkerSupervisor supervisor(options);
  ASSERT_TRUE(supervisor.Start());
  for (int i = 0; i < 5000 && supervisor.Poll() > 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  WorkerSupervisorStats stats = supervisor.stats();
  EXPECT_EQ(stats.spawned, 1u);
  EXPECT_EQ(stats.clean_exits, 1u);
  EXPECT_EQ(stats.restarts, 0u);
}

TEST(WorkerSupervisorTest, SignalDeathIsRestartable) {
  WorkerProcessOptions options;
  options.argv = {"/bin/sh", "-c", "kill -9 $$"};
  options.num_workers = 1;
  options.max_restarts = 1;
  WorkerSupervisor supervisor(options);
  ASSERT_TRUE(supervisor.Start());
  for (int i = 0; i < 5000 && supervisor.Poll() > 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  WorkerSupervisorStats stats = supervisor.stats();
  EXPECT_EQ(stats.spawned, 2u);
  EXPECT_EQ(stats.crashes, 2u);
  EXPECT_EQ(stats.restarts, 1u);
  EXPECT_EQ(stats.restart_budget_exhausted, 1u);
}

#endif  // !_WIN32

TEST(WorkerExitCodeTest, RestartabilityContract) {
  EXPECT_FALSE(WorkerExitRestartable(serve::kWorkerExitClean));
  EXPECT_FALSE(WorkerExitRestartable(serve::kWorkerExitUsage));
  EXPECT_FALSE(WorkerExitRestartable(serve::kWorkerExitDigestRefusal));
  EXPECT_TRUE(WorkerExitRestartable(serve::kWorkerExitIoGiveUp));
  EXPECT_TRUE(WorkerExitRestartable(serve::kWorkerExitCrash));
  EXPECT_FALSE(WorkerExitRestartable(127)) << "exec failure must be poison";
  EXPECT_STREQ(serve::WorkerExitCodeName(serve::kWorkerExitDigestRefusal),
               "digest-refusal");
  EXPECT_STREQ(serve::WorkerExitCodeName(serve::kWorkerExitIoGiveUp),
               "io-give-up");
}

}  // namespace
}  // namespace featsep
