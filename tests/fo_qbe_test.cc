#include "qbe/fo_qbe.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace featsep {
namespace {

using ::featsep::testing::AddEntity;
using ::featsep::testing::GraphSchema;

TEST(FoQbeTest, SeparatesHomEquivalentButNonIsomorphic) {
  // e1 with one out-edge vs e2 with two: FO explains what CQ cannot.
  auto db = std::make_shared<Database>(GraphSchema());
  Value e1 = AddEntity(*db, "e1");
  Value e2 = AddEntity(*db, "e2");
  testing::AddEdge(*db, "e1", "t");
  testing::AddEdge(*db, "e2", "u1");
  testing::AddEdge(*db, "e2", "u2");
  EXPECT_TRUE(SolveFoQbe({db.get(), {e1}, {e2}}).exists);
  EXPECT_TRUE(SolveFoQbe({db.get(), {e2}, {e1}}).exists);
}

TEST(FoQbeTest, OrbitMatesCannotBeSeparated) {
  auto db = std::make_shared<Database>(GraphSchema());
  Value e1 = AddEntity(*db, "e1");
  Value e2 = AddEntity(*db, "e2");
  testing::AddEdge(*db, "e1", "t1");
  testing::AddEdge(*db, "e2", "t2");  // Same orbit: (D,e1) ≅ (D,e2).
  EXPECT_FALSE(SolveFoQbe({db.get(), {e1}, {e2}}).exists);
}

TEST(FoQbeTest, MixedSets) {
  auto db = std::make_shared<Database>(GraphSchema());
  Value e1 = AddEntity(*db, "e1");
  Value e2 = AddEntity(*db, "e2");
  Value e3 = AddEntity(*db, "e3");
  testing::AddEdge(*db, "e1", "t1");
  testing::AddEdge(*db, "e2", "t2");
  // e3 isolated. {e1} vs {e3} separable; {e1} vs {e2, e3} not (e2 ~ e1).
  EXPECT_TRUE(SolveFoQbe({db.get(), {e1}, {e3}}).exists);
  EXPECT_FALSE(SolveFoQbe({db.get(), {e1}, {e2, e3}}).exists);
}

}  // namespace
}  // namespace featsep
