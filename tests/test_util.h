#ifndef FEATSEP_TESTS_TEST_UTIL_H_
#define FEATSEP_TESTS_TEST_UTIL_H_

#include <memory>
#include <string>
#include <vector>

#include "relational/database.h"
#include "relational/schema.h"
#include "relational/training_database.h"

namespace featsep {
namespace testing {

/// Entity schema with unary Eta and binary E (a labeled digraph world).
inline std::shared_ptr<const Schema> GraphSchema() {
  Schema schema;
  RelationId eta = schema.AddRelation("Eta", 1);
  schema.AddRelation("E", 2);
  schema.set_entity_relation(eta);
  return std::make_shared<const Schema>(std::move(schema));
}

/// Entity schema with unary Eta, unary R, unary S (Example 6.2's schema).
inline std::shared_ptr<const Schema> UnarySchema() {
  Schema schema;
  RelationId eta = schema.AddRelation("Eta", 1);
  schema.AddRelation("R", 1);
  schema.AddRelation("S", 1);
  schema.set_entity_relation(eta);
  return std::make_shared<const Schema>(std::move(schema));
}

/// Adds Eta(name) and returns the value.
inline Value AddEntity(Database& db, const std::string& name) {
  Value v = db.Intern(name);
  db.AddFact(db.schema().entity_relation(), {v});
  return v;
}

/// Adds E(a, b) to a GraphSchema database.
inline void AddEdge(Database& db, const std::string& a,
                    const std::string& b) {
  db.AddFact("E", {a, b});
}

/// Builds a directed path a0 -> a1 -> ... -> a_n (n edges) with the given
/// prefix; returns the interned node values.
inline std::vector<Value> AddPath(Database& db, const std::string& prefix,
                                  std::size_t edges) {
  std::vector<Value> nodes;
  for (std::size_t i = 0; i <= edges; ++i) {
    nodes.push_back(db.Intern(prefix + std::to_string(i)));
  }
  for (std::size_t i = 0; i < edges; ++i) {
    db.AddFact(db.schema().FindRelation("E"), {nodes[i], nodes[i + 1]});
  }
  return nodes;
}

/// Builds a directed cycle of the given length; returns the node values.
inline std::vector<Value> AddCycle(Database& db, const std::string& prefix,
                                   std::size_t length) {
  std::vector<Value> nodes;
  for (std::size_t i = 0; i < length; ++i) {
    nodes.push_back(db.Intern(prefix + std::to_string(i)));
  }
  RelationId e = db.schema().FindRelation("E");
  for (std::size_t i = 0; i < length; ++i) {
    db.AddFact(e, {nodes[i], nodes[(i + 1) % length]});
  }
  return nodes;
}

}  // namespace testing
}  // namespace featsep

#endif  // FEATSEP_TESTS_TEST_UTIL_H_
