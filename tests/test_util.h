#ifndef FEATSEP_TESTS_TEST_UTIL_H_
#define FEATSEP_TESTS_TEST_UTIL_H_

#include <memory>
#include <string>
#include <vector>

#include "cq/cq.h"
#include "relational/database.h"
#include "relational/schema.h"
#include "relational/training_database.h"
#include "util/budget.h"

namespace featsep {
namespace testing {

/// Entity schema with unary Eta and binary E (a labeled digraph world).
inline std::shared_ptr<const Schema> GraphSchema() {
  Schema schema;
  RelationId eta = schema.AddRelation("Eta", 1);
  schema.AddRelation("E", 2);
  schema.set_entity_relation(eta);
  return std::make_shared<const Schema>(std::move(schema));
}

/// Entity schema with unary Eta, unary R, unary S (Example 6.2's schema).
inline std::shared_ptr<const Schema> UnarySchema() {
  Schema schema;
  RelationId eta = schema.AddRelation("Eta", 1);
  schema.AddRelation("R", 1);
  schema.AddRelation("S", 1);
  schema.set_entity_relation(eta);
  return std::make_shared<const Schema>(std::move(schema));
}

/// Adds Eta(name) and returns the value.
inline Value AddEntity(Database& db, const std::string& name) {
  Value v = db.Intern(name);
  db.AddFact(db.schema().entity_relation(), {v});
  return v;
}

/// Adds E(a, b) to a GraphSchema database.
inline void AddEdge(Database& db, const std::string& a,
                    const std::string& b) {
  db.AddFact("E", {a, b});
}

/// Builds a directed path a0 -> a1 -> ... -> a_n (n edges) with the given
/// prefix; returns the interned node values.
inline std::vector<Value> AddPath(Database& db, const std::string& prefix,
                                  std::size_t edges) {
  std::vector<Value> nodes;
  for (std::size_t i = 0; i <= edges; ++i) {
    nodes.push_back(db.Intern(prefix + std::to_string(i)));
  }
  for (std::size_t i = 0; i < edges; ++i) {
    db.AddFact(db.schema().FindRelation("E"), {nodes[i], nodes[i + 1]});
  }
  return nodes;
}

/// Builds a directed cycle of the given length; returns the node values.
inline std::vector<Value> AddCycle(Database& db, const std::string& prefix,
                                   std::size_t length) {
  std::vector<Value> nodes;
  for (std::size_t i = 0; i < length; ++i) {
    nodes.push_back(db.Intern(prefix + std::to_string(i)));
  }
  RelationId e = db.schema().FindRelation("E");
  for (std::size_t i = 0; i < length; ++i) {
    db.AddFact(e, {nodes[i], nodes[(i + 1) % length]});
  }
  return nodes;
}

/// Adds a bidirected clique on `n` fresh values; returns the node values.
inline std::vector<Value> AddClique(Database& db, const std::string& prefix,
                                    std::size_t n) {
  std::vector<Value> nodes;
  for (std::size_t i = 0; i < n; ++i) {
    nodes.push_back(db.Intern(prefix + std::to_string(i)));
  }
  RelationId e = db.schema().FindRelation("E");
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      if (i != j) db.AddFact(e, {nodes[i], nodes[j]});
    }
  }
  return nodes;
}

/// Out-edge and in-edge feature queries over GraphSchema.
inline std::vector<ConjunctiveQuery> OutInFeatures() {
  auto schema = GraphSchema();
  ConjunctiveQuery out = ConjunctiveQuery::MakeFeatureQuery(schema);
  out.AddAtom(schema->FindRelation("E"),
              {out.free_variable(), out.NewVariable("y")});
  ConjunctiveQuery in = ConjunctiveQuery::MakeFeatureQuery(schema);
  in.AddAtom(schema->FindRelation("E"),
             {in.NewVariable("z"), in.free_variable()});
  return {out, in};
}

/// Three entities over GraphSchema: "both" has an out- and an in-edge,
/// "out" only an out-edge, "none" neither — every OutInFeatures() sign
/// pattern except in-only.
inline Database MakeWorld() {
  Database db(GraphSchema());
  AddEntity(db, "both");
  AddEntity(db, "none");
  AddEntity(db, "out");
  AddEdge(db, "both", "t");
  AddEdge(db, "u", "both");
  AddEdge(db, "out", "t");
  return db;
}

/// Same facts as MakeWorld() inserted in a different order with extra
/// interning, so value ids and entity order differ but content is equal.
inline Database MakeWorldReordered() {
  Database db(GraphSchema());
  db.Intern("zzz");  // Interned but never in a fact: not content.
  AddEdge(db, "out", "t");
  AddEdge(db, "u", "both");
  AddEntity(db, "out");
  AddEntity(db, "none");
  AddEdge(db, "both", "t");
  AddEntity(db, "both");
  return db;
}

/// Two entities, one edge, opposite labels: trivially separable, small
/// enough that every procedure finishes instantly when unbudgeted.
inline TrainingDatabase SmallTraining() {
  auto db = std::make_shared<Database>(GraphSchema());
  Value a = AddEntity(*db, "a");
  Value b = AddEntity(*db, "b");
  AddEdge(*db, "a", "b");
  TrainingDatabase training(db);
  training.SetLabel(a, 1);
  training.SetLabel(b, -1);
  return training;
}

/// A budget whose deadline already passed when the procedure starts.
inline ExecutionBudget ExpiredBudget() {
  return ExecutionBudget::WithDeadline(ExecutionBudget::Clock::now());
}

}  // namespace testing
}  // namespace featsep

#endif  // FEATSEP_TESTS_TEST_UTIL_H_
