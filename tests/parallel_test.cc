#include "util/parallel.h"

#include <atomic>
#include <cstddef>
#include <new>
#include <stdexcept>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "util/thread_pool.h"

namespace featsep {
namespace {

TEST(ParallelTest, EffectiveThreadsResolvesKnob) {
  EXPECT_GE(EffectiveThreads(0, 100), 1u);   // Auto is at least one.
  EXPECT_EQ(EffectiveThreads(1, 100), 1u);   // Explicit serial.
  EXPECT_EQ(EffectiveThreads(8, 3), 3u);     // Clamped to the work items.
  EXPECT_EQ(EffectiveThreads(8, 0), 1u);     // Never zero.
}

TEST(ParallelTest, ForVisitsEveryIndexExactlyOnce) {
  for (std::size_t threads : {1ul, 2ul, 4ul, 16ul}) {
    constexpr std::size_t kItems = 1000;
    std::vector<std::atomic<int>> visits(kItems);
    ParallelFor(threads, kItems, [&](std::size_t i) {
      visits[i].fetch_add(1, std::memory_order_relaxed);
    });
    for (std::size_t i = 0; i < kItems; ++i) {
      EXPECT_EQ(visits[i].load(), 1) << "index " << i;
    }
  }
}

TEST(ParallelTest, ForOrderedResultsViaIndexedWrites) {
  constexpr std::size_t kItems = 512;
  for (std::size_t threads : {1ul, 4ul}) {
    std::vector<std::size_t> squares(kItems, 0);
    ParallelFor(threads, kItems, [&](std::size_t i) { squares[i] = i * i; });
    for (std::size_t i = 0; i < kItems; ++i) EXPECT_EQ(squares[i], i * i);
  }
}

TEST(ParallelTest, ForHandlesEmptyRange) {
  bool called = false;
  ParallelFor(4, 0, [&](std::size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ParallelTest, FindFirstMatchesSerialAnswer) {
  constexpr std::size_t kItems = 500;
  auto pred = [](std::size_t i) { return i % 97 == 41; };  // First hit: 41.
  std::size_t serial = ParallelFindFirst(1, kItems, pred);
  EXPECT_EQ(serial, 41u);
  for (std::size_t threads : {2ul, 4ul, 8ul}) {
    // Repeat to shake out scheduling races: the answer must be the serial
    // one every time, not just usually.
    for (int round = 0; round < 25; ++round) {
      EXPECT_EQ(ParallelFindFirst(threads, kItems, pred), serial);
    }
  }
}

TEST(ParallelTest, FindFirstNoMatchReturnsN) {
  auto never = [](std::size_t) { return false; };
  EXPECT_EQ(ParallelFindFirst(1, 100, never), 100u);
  EXPECT_EQ(ParallelFindFirst(4, 100, never), 100u);
  EXPECT_EQ(ParallelFindFirst(4, 0, never), 0u);
}

TEST(ParallelTest, FindFirstEvaluatesEveryIndexBelowTheAnswer) {
  // Determinism contract: indices below the returned match are all fully
  // evaluated, no matter which thread found the match first.
  constexpr std::size_t kItems = 400;
  constexpr std::size_t kMatch = 333;
  for (std::size_t threads : {2ul, 8ul}) {
    std::vector<std::atomic<int>> visits(kItems);
    std::size_t hit = ParallelFindFirst(threads, kItems, [&](std::size_t i) {
      visits[i].fetch_add(1, std::memory_order_relaxed);
      return i >= kMatch;
    });
    EXPECT_EQ(hit, kMatch);
    for (std::size_t i = 0; i < kMatch; ++i) {
      EXPECT_EQ(visits[i].load(), 1) << "index " << i;
    }
  }
}

TEST(ParallelTest, FindFirstEmptyRangeNeverCallsPredicate) {
  for (std::size_t threads : {1ul, 2ul, 8ul}) {
    bool called = false;
    std::size_t hit = ParallelFindFirst(threads, 0, [&](std::size_t) {
      called = true;
      return true;
    });
    EXPECT_EQ(hit, 0u);
    EXPECT_FALSE(called);
  }
}

TEST(ParallelTest, FindFirstMoreThreadsThanItems) {
  // Oversubscription must neither skip nor double-evaluate indices, and
  // the minimal match must still win.
  constexpr std::size_t kItems = 3;
  for (int round = 0; round < 50; ++round) {
    std::vector<std::atomic<int>> visits(kItems);
    std::size_t hit = ParallelFindFirst(16, kItems, [&](std::size_t i) {
      visits[i].fetch_add(1, std::memory_order_relaxed);
      return i >= 1;
    });
    EXPECT_EQ(hit, 1u);
    EXPECT_EQ(visits[0].load(), 1);
    EXPECT_EQ(visits[1].load(), 1);
    EXPECT_LE(visits[2].load(), 1);  // May be skipped by early exit.
  }
  // All-match and no-match extremes under oversubscription.
  EXPECT_EQ(ParallelFindFirst(16, 2, [](std::size_t) { return true; }), 0u);
  EXPECT_EQ(ParallelFindFirst(16, 2, [](std::size_t) { return false; }), 2u);
}

TEST(ThreadPoolTest, VisitsEveryIndexAcrossReusedBatches) {
  for (std::size_t threads : {1ul, 2ul, 8ul}) {
    ThreadPool pool(threads);
    EXPECT_GE(pool.concurrency(), 1u);
    // Several batches through the same persistent pool: the workers must
    // pick up each new generation, not just the first.
    for (int batch = 0; batch < 3; ++batch) {
      constexpr std::size_t kItems = 500;
      std::vector<std::atomic<int>> visits(kItems);
      pool.ParallelFor(kItems, [&](std::size_t i) {
        visits[i].fetch_add(1, std::memory_order_relaxed);
      });
      for (std::size_t i = 0; i < kItems; ++i) {
        EXPECT_EQ(visits[i].load(), 1) << "index " << i;
      }
    }
  }
}

TEST(ThreadPoolTest, EmptyRangeNeverInvokes) {
  ThreadPool pool(4);
  bool called = false;
  pool.ParallelFor(0, [&](std::size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ThreadPoolTest, FewerItemsThanWorkers) {
  ThreadPool pool(8);
  std::vector<std::atomic<int>> visits(2);
  pool.ParallelFor(2, [&](std::size_t i) {
    visits[i].fetch_add(1, std::memory_order_relaxed);
  });
  EXPECT_EQ(visits[0].load(), 1);
  EXPECT_EQ(visits[1].load(), 1);
}

TEST(ParallelTest, FindFirstSerialStopsAtTheMatch) {
  // The serial path short-circuits exactly like a hand-written loop.
  std::size_t evaluated = 0;
  std::size_t hit = ParallelFindFirst(1, 100000, [&](std::size_t i) {
    ++evaluated;
    return i == 17;
  });
  EXPECT_EQ(hit, 17u);
  EXPECT_EQ(evaluated, 18u);
}

// --- Exception propagation ------------------------------------------------
//
// Worker exceptions must surface in the calling thread (not std::terminate),
// sibling workers must stop claiming new items, and the first exception (by
// completion order) wins when several items throw.

struct ItemError : std::runtime_error {
  explicit ItemError(std::size_t i)
      : std::runtime_error("item " + std::to_string(i)), index(i) {}
  std::size_t index;
};

TEST(ParallelTest, ForRethrowsWorkerException) {
  for (std::size_t threads : {1ul, 2ul, 8ul}) {
    EXPECT_THROW(ParallelFor(threads, 100,
                             [](std::size_t i) {
                               if (i == 13) throw ItemError(i);
                             }),
                 ItemError);
  }
}

TEST(ParallelTest, ForExceptionCancelsSiblings) {
  // An early throw must stop the sweep well short of the full range: with
  // the abort flag honoured, visits stay far below n even though thousands
  // of items remain unclaimed at throw time.
  constexpr std::size_t kItems = 100000;
  std::atomic<std::size_t> visits{0};
  try {
    ParallelFor(4, kItems, [&](std::size_t i) {
      visits.fetch_add(1, std::memory_order_relaxed);
      if (i == 0) throw ItemError(i);
    });
    FAIL() << "expected ItemError";
  } catch (const ItemError& e) {
    EXPECT_EQ(e.index, 0u);
  }
  EXPECT_LT(visits.load(), kItems / 2) << "siblings kept claiming after throw";
}

TEST(ParallelTest, ForFirstExceptionWinsWhenAllThrow) {
  // Every item throws; exactly one exception must come out, carrying some
  // valid index — and nothing may leak or double-rethrow.
  for (int round = 0; round < 20; ++round) {
    try {
      ParallelFor(8, 64, [](std::size_t i) { throw ItemError(i); });
      FAIL() << "expected ItemError";
    } catch (const ItemError& e) {
      EXPECT_LT(e.index, 64u);
    }
  }
}

TEST(ParallelTest, ForBadAllocPropagates) {
  // Allocation failure is the fault-injection case: it must unwind through
  // the fan-out like any other exception.
  EXPECT_THROW(ParallelFor(4, 50,
                           [](std::size_t i) {
                             if (i == 7) throw std::bad_alloc();
                           }),
               std::bad_alloc);
}

TEST(ParallelTest, FindFirstRethrowsWorkerException) {
  for (std::size_t threads : {1ul, 2ul, 8ul}) {
    EXPECT_THROW(ParallelFindFirst(threads, 100,
                                   [](std::size_t i) -> bool {
                                     if (i == 23) throw ItemError(i);
                                     return false;
                                   }),
                 ItemError);
  }
}

TEST(ParallelTest, FindFirstExceptionCancelsSiblings) {
  constexpr std::size_t kItems = 100000;
  std::atomic<std::size_t> visits{0};
  EXPECT_THROW(ParallelFindFirst(4, kItems,
                                 [&](std::size_t i) -> bool {
                                   visits.fetch_add(1,
                                                    std::memory_order_relaxed);
                                   if (i == 0) throw ItemError(i);
                                   return false;
                                 }),
               ItemError);
  EXPECT_LT(visits.load(), kItems / 2) << "siblings kept claiming after throw";
}

TEST(ThreadPoolTest, RethrowsWorkerExceptionAndStaysUsable) {
  for (std::size_t threads : {1ul, 2ul, 8ul}) {
    ThreadPool pool(threads);
    EXPECT_THROW(pool.ParallelFor(100,
                                  [](std::size_t i) {
                                    if (i == 13) throw ItemError(i);
                                  }),
                 ItemError);
    // The pool survives the throw: a clean batch afterwards still visits
    // every index exactly once.
    constexpr std::size_t kItems = 300;
    std::vector<std::atomic<int>> visits(kItems);
    pool.ParallelFor(kItems, [&](std::size_t i) {
      visits[i].fetch_add(1, std::memory_order_relaxed);
    });
    for (std::size_t i = 0; i < kItems; ++i) {
      EXPECT_EQ(visits[i].load(), 1) << "index " << i;
    }
  }
}

TEST(ThreadPoolTest, ExceptionSkipsRemainingItems) {
  ThreadPool pool(4);
  constexpr std::size_t kItems = 100000;
  std::atomic<std::size_t> visits{0};
  EXPECT_THROW(pool.ParallelFor(kItems,
                                [&](std::size_t i) {
                                  visits.fetch_add(1,
                                                   std::memory_order_relaxed);
                                  if (i == 0) throw ItemError(i);
                                }),
                ItemError);
  EXPECT_LT(visits.load(), kItems / 2) << "batch kept running after throw";
}

TEST(ThreadPoolTest, BadAllocPropagatesAndPoolSurvives) {
  ThreadPool pool(4);
  for (int round = 0; round < 3; ++round) {
    EXPECT_THROW(pool.ParallelFor(50,
                                  [](std::size_t i) {
                                    if (i == 7) throw std::bad_alloc();
                                  }),
                 std::bad_alloc);
  }
  bool ran = false;
  pool.ParallelFor(1, [&](std::size_t) { ran = true; });
  EXPECT_TRUE(ran);
}

}  // namespace
}  // namespace featsep
