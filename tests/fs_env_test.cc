#include "util/fs_env.h"

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#ifndef _WIN32
#include <unistd.h>
#endif

namespace featsep {
namespace {

namespace fs = std::filesystem;

/// A scratch directory unique to this process and test.
std::string ScratchDir(const std::string& tag) {
  static int counter = 0;
  std::string name = "featsep-fs-env-" + tag + "-";
#ifndef _WIN32
  name += std::to_string(::getpid()) + "-";
#endif
  name += std::to_string(counter++);
  fs::path dir = fs::temp_directory_path() / name;
  std::error_code ec;
  fs::remove_all(dir, ec);
  fs::create_directories(dir);
  return dir.string();
}

TEST(RealFsEnvTest, ReadWriteRoundTrip) {
  const std::string dir = ScratchDir("rw");
  FsEnv* env = RealFs();
  const std::string path = dir + "/file.txt";
  EXPECT_EQ(env->WriteFile(path, "payload\n"), FsStatus::kOk);
  std::string bytes;
  EXPECT_EQ(env->ReadFile(path, &bytes), FsStatus::kOk);
  EXPECT_EQ(bytes, "payload\n");
  EXPECT_TRUE(env->Exists(path));
  EXPECT_TRUE(env->Mtime(path).has_value());
}

TEST(RealFsEnvTest, MissingFileIsNotFoundNotError) {
  const std::string dir = ScratchDir("missing");
  FsEnv* env = RealFs();
  std::string bytes;
  EXPECT_EQ(env->ReadFile(dir + "/absent", &bytes), FsStatus::kNotFound);
  EXPECT_EQ(env->Remove(dir + "/absent"), FsStatus::kNotFound);
  EXPECT_EQ(env->Touch(dir + "/absent"), FsStatus::kNotFound);
  EXPECT_FALSE(env->Mtime(dir + "/absent").has_value());
  EXPECT_FALSE(env->Exists(dir + "/absent"));
}

TEST(RealFsEnvTest, RenameMissingSourceIsNotFound) {
  // The lost-claim-race signature: a missing rename source must be
  // distinguishable from a filesystem fault.
  const std::string dir = ScratchDir("rename");
  FsEnv* env = RealFs();
  EXPECT_EQ(env->Rename(dir + "/absent", dir + "/target"),
            FsStatus::kNotFound);
  ASSERT_EQ(env->WriteFile(dir + "/src", "x"), FsStatus::kOk);
  EXPECT_EQ(env->Rename(dir + "/src", dir + "/dst"), FsStatus::kOk);
  EXPECT_FALSE(env->Exists(dir + "/src"));
  EXPECT_TRUE(env->Exists(dir + "/dst"));
}

TEST(RealFsEnvTest, ListDirReportsEntriesWithMetadata) {
  const std::string dir = ScratchDir("list");
  FsEnv* env = RealFs();
  ASSERT_EQ(env->WriteFile(dir + "/a.txt", "aaaa"), FsStatus::kOk);
  ASSERT_EQ(env->CreateDirs(dir + "/sub"), FsStatus::kOk);
  FsListResult listing = env->ListDir(dir);
  ASSERT_EQ(listing.status, FsStatus::kOk);
  EXPECT_EQ(listing.scan_errors, 0u);
  ASSERT_EQ(listing.entries.size(), 2u);
  std::sort(listing.entries.begin(), listing.entries.end(),
            [](const FsDirEntry& a, const FsDirEntry& b) {
              return a.name < b.name;
            });
  EXPECT_EQ(listing.entries[0].name, "a.txt");
  EXPECT_FALSE(listing.entries[0].is_dir);
  EXPECT_EQ(listing.entries[0].size, 4u);
  EXPECT_EQ(listing.entries[1].name, "sub");
  EXPECT_TRUE(listing.entries[1].is_dir);
}

TEST(RealFsEnvTest, ListMissingDirIsError) {
  const std::string dir = ScratchDir("list-missing");
  FsListResult listing = RealFs()->ListDir(dir + "/nope");
  EXPECT_EQ(listing.status, FsStatus::kError);
  EXPECT_TRUE(listing.entries.empty());
}

TEST(RealFsEnvTest, PublishIsAtomicAndCleansTmpOnSuccess) {
  const std::string dir = ScratchDir("publish");
  FsEnv* env = RealFs();
  EXPECT_EQ(env->Publish(dir + "/t.tmp", dir + "/final", "bytes"),
            FsStatus::kOk);
  std::string bytes;
  EXPECT_EQ(env->ReadFile(dir + "/final", &bytes), FsStatus::kOk);
  EXPECT_EQ(bytes, "bytes");
  EXPECT_FALSE(env->Exists(dir + "/t.tmp"));
}

TEST(FaultFsEnvTest, ZeroChanceInjectsNothing) {
  const std::string dir = ScratchDir("clean");
  FaultFsEnv env(FaultFsOptions{});
  EXPECT_EQ(env.WriteFile(dir + "/f", "x"), FsStatus::kOk);
  std::string bytes;
  EXPECT_EQ(env.ReadFile(dir + "/f", &bytes), FsStatus::kOk);
  EXPECT_EQ(bytes, "x");
  EXPECT_EQ(env.stats().total_injected, 0u);
  EXPECT_GT(env.stats().total_attempts, 0u);
}

TEST(FaultFsEnvTest, ScriptedFailuresFireExactlyNTimes) {
  const std::string dir = ScratchDir("scripted");
  FaultFsEnv env(FaultFsOptions{});
  env.FailNext(FsOp::kWrite, 2);
  EXPECT_EQ(env.WriteFile(dir + "/f", "x"), FsStatus::kError);
  EXPECT_EQ(env.WriteFile(dir + "/f", "x"), FsStatus::kError);
  EXPECT_EQ(env.WriteFile(dir + "/f", "x"), FsStatus::kOk);
  // Scripted failures target their op kind only.
  env.FailNext(FsOp::kRead, 1);
  EXPECT_EQ(env.WriteFile(dir + "/g", "y"), FsStatus::kOk);
  std::string bytes;
  EXPECT_EQ(env.ReadFile(dir + "/g", &bytes), FsStatus::kError);
  EXPECT_EQ(env.ReadFile(dir + "/g", &bytes), FsStatus::kOk);
}

TEST(FaultFsEnvTest, DeterministicReplayForSameSeed) {
  const std::string dir = ScratchDir("replay");
  auto trace = [&](std::uint64_t seed) {
    FaultFsOptions options;
    options.seed = seed;
    options.fail_chance = 0.5;
    FaultFsEnv env(options);
    std::vector<int> outcomes;
    for (int i = 0; i < 64; ++i) {
      outcomes.push_back(
          env.WriteFile(dir + "/r", "x") == FsStatus::kOk ? 1 : 0);
    }
    return outcomes;
  };
  EXPECT_EQ(trace(7), trace(7));
  EXPECT_NE(trace(7), trace(8));
}

TEST(FaultFsEnvTest, TornWriteLeavesStrictPrefix) {
  const std::string dir = ScratchDir("torn");
  FaultFsOptions options;
  options.torn_write_chance = 1.0;
  FaultFsEnv env(options);
  const std::string payload = "0123456789abcdef0123456789abcdef";
  env.FailNext(FsOp::kWrite, 1);
  EXPECT_EQ(env.WriteFile(dir + "/t", payload), FsStatus::kError);
  std::string bytes;
  // Whatever survived must be a strict prefix of the payload — the shape a
  // crash or ENOSPC mid-write leaves on a real disk.
  if (RealFs()->ReadFile(dir + "/t", &bytes) == FsStatus::kOk) {
    EXPECT_LT(bytes.size(), payload.size());
    EXPECT_EQ(payload.substr(0, bytes.size()), bytes);
  }
}

TEST(FaultFsEnvTest, CrashAfterOpsFailsEverythingUntilRecover) {
  const std::string dir = ScratchDir("crash");
  FaultFsOptions options;
  options.crash_after_ops = 3;
  FaultFsEnv env(options);
  std::string bytes;
  EXPECT_EQ(env.WriteFile(dir + "/a", "x"), FsStatus::kOk);
  EXPECT_EQ(env.ReadFile(dir + "/a", &bytes), FsStatus::kOk);
  // Third op crosses the crash point: crashed from here on.
  EXPECT_EQ(env.WriteFile(dir + "/b", "y"), FsStatus::kError);
  EXPECT_TRUE(env.crashed());
  EXPECT_EQ(env.ReadFile(dir + "/a", &bytes), FsStatus::kError);
  EXPECT_EQ(env.ListDir(dir).status, FsStatus::kError);
  EXPECT_FALSE(env.Exists(dir + "/a"));
  // ClearFaults does not resurrect a crashed environment...
  env.ClearFaults();
  EXPECT_EQ(env.ReadFile(dir + "/a", &bytes), FsStatus::kError);
  // ...Recover (the "process restarted") does.
  env.Recover();
  EXPECT_EQ(env.ReadFile(dir + "/a", &bytes), FsStatus::kOk);
  EXPECT_EQ(bytes, "x");
}

TEST(FaultFsEnvTest, PartialListReportsScanErrors) {
  const std::string dir = ScratchDir("partial");
  FaultFsOptions options;
  options.partial_list_chance = 1.0;
  FaultFsEnv env(options);
  for (int i = 0; i < 8; ++i) {
    ASSERT_EQ(env.WriteFile(dir + "/f" + std::to_string(i), "x"),
              FsStatus::kOk);
  }
  env.FailNext(FsOp::kList, 1);
  FsListResult listing = env.ListDir(dir);
  // A partial scan: some entries plus nonzero scan_errors accounting for
  // every dropped one — never a silently truncated "complete" listing.
  EXPECT_EQ(listing.status, FsStatus::kOk);
  EXPECT_GT(listing.scan_errors, 0u);
  EXPECT_EQ(listing.entries.size() + listing.scan_errors, 8u);
}

TEST(FaultFsEnvTest, StatsCountAttemptsAndInjections) {
  const std::string dir = ScratchDir("stats");
  FaultFsEnv env(FaultFsOptions{});
  env.FailNext(FsOp::kRemove, 1);
  EXPECT_EQ(env.Remove(dir + "/x"), FsStatus::kError);
  EXPECT_EQ(env.Remove(dir + "/x"), FsStatus::kNotFound);
  FaultFsStats stats = env.stats();
  EXPECT_EQ(stats.attempts[static_cast<std::size_t>(FsOp::kRemove)], 2u);
  EXPECT_EQ(stats.injected[static_cast<std::size_t>(FsOp::kRemove)], 1u);
  EXPECT_EQ(stats.total_attempts, 2u);
  EXPECT_EQ(stats.total_injected, 1u);
}

}  // namespace
}  // namespace featsep
