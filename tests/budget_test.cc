#include "util/budget.h"

#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "test_util.h"

namespace featsep {
namespace {

using std::chrono::milliseconds;
using ::featsep::testing::ExpiredBudget;

TEST(BudgetTest, DefaultBudgetIsUnbounded) {
  ExecutionBudget budget;
  for (int i = 0; i < 10000; ++i) EXPECT_TRUE(budget.Charge());
  EXPECT_TRUE(budget.Recheck());
  EXPECT_FALSE(budget.Interrupted());
  EXPECT_EQ(budget.outcome(), BudgetOutcome::kCompleted);
  EXPECT_EQ(budget.steps(), 10000u);
}

TEST(BudgetTest, StepLimitTripsOnLimitPlusFirstStep) {
  ExecutionBudget budget = ExecutionBudget::WithStepLimit(5);
  for (int i = 0; i < 5; ++i) {
    EXPECT_TRUE(budget.Charge()) << "step " << i;
  }
  EXPECT_FALSE(budget.Interrupted());
  EXPECT_FALSE(budget.Charge());  // 6th step trips.
  EXPECT_TRUE(budget.Interrupted());
  EXPECT_EQ(budget.outcome(), BudgetOutcome::kBudgetExhausted);
}

TEST(BudgetTest, MultiStepChargeCountsAllUnits) {
  ExecutionBudget budget = ExecutionBudget::WithStepLimit(10);
  EXPECT_TRUE(budget.Charge(4));
  EXPECT_TRUE(budget.Charge(6));  // Exactly at the limit: still fine.
  EXPECT_FALSE(budget.Charge(1));
  EXPECT_EQ(budget.outcome(), BudgetOutcome::kBudgetExhausted);
}

TEST(BudgetTest, ExpiredDeadlineDetectedByRecheckWithoutCharging) {
  ExecutionBudget budget = ExpiredBudget();
  EXPECT_FALSE(budget.Recheck());
  EXPECT_EQ(budget.outcome(), BudgetOutcome::kTimedOut);
  EXPECT_EQ(budget.steps(), 0u);
}

TEST(BudgetTest, DeadlineTripsWithinClockStride) {
  // Charge() only reads the clock every kClockStride steps, so an expired
  // deadline is observed at most one stride late — never unboundedly late.
  ExecutionBudget budget = ExecutionBudget::WithTimeout(milliseconds(0));
  std::uint64_t charged = 0;
  while (budget.Charge()) {
    ++charged;
    ASSERT_LT(charged, 2 * ExecutionBudget::kClockStride)
        << "deadline never observed";
  }
  EXPECT_EQ(budget.outcome(), BudgetOutcome::kTimedOut);
}

TEST(BudgetTest, CancelLatchesOnNextCharge) {
  ExecutionBudget budget;
  EXPECT_TRUE(budget.Charge());
  budget.Cancel();
  EXPECT_TRUE(budget.cancel_requested());
  // Cancel() only raises the flag; the outcome latches at the next check.
  EXPECT_FALSE(budget.Interrupted());
  EXPECT_FALSE(budget.Charge());
  EXPECT_EQ(budget.outcome(), BudgetOutcome::kCancelled);
}

TEST(BudgetTest, CancelLatchesOnNextRecheck) {
  ExecutionBudget budget;
  budget.Cancel();
  EXPECT_FALSE(budget.Recheck());
  EXPECT_EQ(budget.outcome(), BudgetOutcome::kCancelled);
}

TEST(BudgetTest, FirstViolationIsSticky) {
  // Step limit trips first; a later cancel must not overwrite the outcome.
  ExecutionBudget budget = ExecutionBudget::WithStepLimit(1);
  EXPECT_TRUE(budget.Charge());
  EXPECT_FALSE(budget.Charge());
  EXPECT_EQ(budget.outcome(), BudgetOutcome::kBudgetExhausted);
  budget.Cancel();
  EXPECT_FALSE(budget.Recheck());
  EXPECT_EQ(budget.outcome(), BudgetOutcome::kBudgetExhausted);
}

TEST(BudgetTest, ForceOutcomeLatchesImmediately) {
  ExecutionBudget budget;
  budget.ForceOutcome(BudgetOutcome::kTimedOut);
  EXPECT_TRUE(budget.Interrupted());
  EXPECT_EQ(budget.outcome(), BudgetOutcome::kTimedOut);
  EXPECT_FALSE(budget.Charge());
  // Forcing kCompleted is a no-op, and a second force cannot overwrite.
  ExecutionBudget fresh;
  fresh.ForceOutcome(BudgetOutcome::kCompleted);
  EXPECT_FALSE(fresh.Interrupted());
  budget.ForceOutcome(BudgetOutcome::kCancelled);
  EXPECT_EQ(budget.outcome(), BudgetOutcome::kTimedOut);
}

TEST(BudgetTest, ChargeAfterTripFailsFast) {
  ExecutionBudget budget = ExecutionBudget::WithStepLimit(1);
  budget.Charge();
  budget.Charge();
  std::uint64_t steps_at_trip = budget.steps();
  // Once tripped, Charge() returns false without charging further steps —
  // the fast path a parallel shard spins on while unwinding.
  for (int i = 0; i < 100; ++i) EXPECT_FALSE(budget.Charge());
  EXPECT_EQ(budget.steps(), steps_at_trip);
}

TEST(BudgetTest, CancelFromAnotherThreadStopsAllChargers) {
  ExecutionBudget budget;
  std::atomic<int> stopped{0};
  std::vector<std::thread> chargers;
  for (int t = 0; t < 4; ++t) {
    chargers.emplace_back([&]() {
      while (budget.Charge()) {
      }
      stopped.fetch_add(1);
    });
  }
  budget.Cancel();
  for (std::thread& t : chargers) t.join();
  EXPECT_EQ(stopped.load(), 4);
  EXPECT_EQ(budget.outcome(), BudgetOutcome::kCancelled);
}

TEST(BudgetTest, NullptrHelpersTreatNullAsUnbounded) {
  EXPECT_TRUE(ChargeBudget(nullptr));
  EXPECT_TRUE(ChargeBudget(nullptr, 1000));
  EXPECT_TRUE(RecheckBudget(nullptr));
  EXPECT_TRUE(BudgetOk(nullptr));
  EXPECT_EQ(OutcomeOf(nullptr), BudgetOutcome::kCompleted);

  ExecutionBudget budget = ExecutionBudget::WithStepLimit(2);
  EXPECT_TRUE(ChargeBudget(&budget, 2));
  EXPECT_TRUE(BudgetOk(&budget));
  EXPECT_FALSE(ChargeBudget(&budget));
  EXPECT_FALSE(RecheckBudget(&budget));
  EXPECT_FALSE(BudgetOk(&budget));
  EXPECT_EQ(OutcomeOf(&budget), BudgetOutcome::kBudgetExhausted);
}

TEST(BudgetTest, OutcomeNamesAreStable) {
  EXPECT_EQ(std::string(BudgetOutcomeName(BudgetOutcome::kCompleted)),
            "completed");
  EXPECT_EQ(std::string(BudgetOutcomeName(BudgetOutcome::kTimedOut)),
            "timed-out");
  EXPECT_EQ(std::string(BudgetOutcomeName(BudgetOutcome::kCancelled)),
            "cancelled");
  EXPECT_EQ(std::string(BudgetOutcomeName(BudgetOutcome::kBudgetExhausted)),
            "budget-exhausted");
}

TEST(BudgetTest, BudgetedWrapperReportsOk) {
  Budgeted<int> done;
  done.value = 7;
  EXPECT_TRUE(done.ok());
  Budgeted<int> partial;
  partial.outcome = BudgetOutcome::kTimedOut;
  EXPECT_FALSE(partial.ok());
}

}  // namespace
}  // namespace featsep
