#include "cq/cq.h"

#include <gtest/gtest.h>

#include "cq/containment.h"
#include "cq/core.h"
#include "cq/evaluation.h"
#include "cq/product.h"
#include "test_util.h"

namespace featsep {
namespace {

using ::featsep::testing::AddEntity;
using ::featsep::testing::GraphSchema;
using ::featsep::testing::UnarySchema;

/// q(x) :- Eta(x), E(x, y): entities with an outgoing edge.
ConjunctiveQuery HasOutEdge() {
  ConjunctiveQuery q = ConjunctiveQuery::MakeFeatureQuery(GraphSchema());
  Variable x = q.free_variable();
  Variable y = q.NewVariable("y");
  q.AddAtom(q.schema().FindRelation("E"), {x, y});
  return q;
}

/// q(x) :- Eta(x), E(x, y), E(y, z): entities starting a 2-path.
ConjunctiveQuery HasTwoPath() {
  ConjunctiveQuery q = ConjunctiveQuery::MakeFeatureQuery(GraphSchema());
  Variable x = q.free_variable();
  Variable y = q.NewVariable("y");
  Variable z = q.NewVariable("z");
  RelationId e = q.schema().FindRelation("E");
  q.AddAtom(e, {x, y});
  q.AddAtom(e, {y, z});
  return q;
}

TEST(CqTest, FeatureQueryHasEntityAtom) {
  ConjunctiveQuery q = ConjunctiveQuery::MakeFeatureQuery(GraphSchema());
  EXPECT_TRUE(q.IsUnary());
  EXPECT_EQ(q.NumAtoms(true), 1u);
  EXPECT_EQ(q.NumAtoms(false), 0u);  // Eta(x) not counted per CQ[m].
}

TEST(CqTest, NumAtomsConvention) {
  ConjunctiveQuery q = HasTwoPath();
  EXPECT_EQ(q.NumAtoms(true), 3u);
  EXPECT_EQ(q.NumAtoms(false), 2u);
}

TEST(CqTest, MaxVariableOccurrences) {
  ConjunctiveQuery q = HasTwoPath();
  // x occurs in Eta(x) and E(x,y): 2. y occurs in E(x,y), E(y,z): 2.
  EXPECT_EQ(q.MaxVariableOccurrences(), 2u);
}

TEST(CqTest, DuplicateAtomsIgnored) {
  ConjunctiveQuery q = HasOutEdge();
  Variable x = q.free_variable();
  EXPECT_FALSE(q.AddAtom(q.schema().FindRelation("E"), {x, 1}));
  EXPECT_EQ(q.NumAtoms(false), 1u);
}

TEST(CqTest, ToStringRendering) {
  ConjunctiveQuery q = HasOutEdge();
  EXPECT_EQ(q.ToString(), "q(x) :- Eta(x), E(x, y)");
}

TEST(CqTest, CanonicalDatabaseRoundTrip) {
  ConjunctiveQuery q = HasTwoPath();
  auto [db, vars] = q.CanonicalDatabase();
  EXPECT_EQ(db.size(), 3u);
  std::vector<Value> frees = ConjunctiveQuery::FreeTuple(q, vars);
  ConjunctiveQuery back = CqFromDatabase(db, frees);
  EXPECT_TRUE(AreEquivalent(q, back));
}

TEST(EvaluationTest, SelectsEntitiesWithMatchingStructure) {
  Database db(GraphSchema());
  Value e1 = AddEntity(db, "e1");
  Value e2 = AddEntity(db, "e2");
  Value e3 = AddEntity(db, "e3");
  testing::AddEdge(db, "e1", "a");
  testing::AddEdge(db, "a", "b");
  testing::AddEdge(db, "e2", "c");
  (void)e3;

  EXPECT_EQ(EvaluateUnaryCq(HasOutEdge(), db), (std::vector<Value>{e1, e2}));
  EXPECT_EQ(EvaluateUnaryCq(HasTwoPath(), db), (std::vector<Value>{e1}));
}

TEST(EvaluationTest, EntityAtomRestrictsToEntities) {
  Database db(GraphSchema());
  Value e1 = AddEntity(db, "e1");
  testing::AddEdge(db, "e1", "a");
  testing::AddEdge(db, "a", "b");  // "a" has an out-edge but is no entity.
  std::vector<Value> result = EvaluateUnaryCq(HasOutEdge(), db);
  EXPECT_EQ(result, (std::vector<Value>{e1}));
}

TEST(ContainmentTest, TwoPathImpliesOutEdge) {
  EXPECT_TRUE(IsContainedIn(HasTwoPath(), HasOutEdge()));
  EXPECT_FALSE(IsContainedIn(HasOutEdge(), HasTwoPath()));
  EXPECT_FALSE(AreEquivalent(HasOutEdge(), HasTwoPath()));
}

TEST(ContainmentTest, RedundantAtomEquivalence) {
  // q1(x) :- Eta(x), E(x,y); q2 adds a second out-edge variable: same query.
  ConjunctiveQuery q2 = HasOutEdge();
  Variable x = q2.free_variable();
  Variable y2 = q2.NewVariable("y2");
  q2.AddAtom(q2.schema().FindRelation("E"), {x, y2});
  EXPECT_TRUE(AreEquivalent(HasOutEdge(), q2));
}

TEST(CoreTest, MinimizeRemovesRedundantAtoms) {
  ConjunctiveQuery q = HasOutEdge();
  Variable x = q.free_variable();
  Variable y2 = q.NewVariable("y2");
  Variable y3 = q.NewVariable("y3");
  RelationId e = q.schema().FindRelation("E");
  q.AddAtom(e, {x, y2});
  q.AddAtom(e, {y2, y3});  // Hmm: E(x,y),E(x,y2),E(y2,y3).
  ConjunctiveQuery minimized = MinimizeCq(q);
  EXPECT_TRUE(AreEquivalent(q, minimized));
  EXPECT_LE(minimized.NumAtoms(false), 2u);  // E(x,y2),E(y2,y3) suffice.
}

TEST(CoreTest, CoreOfCoreIsIdempotent) {
  ConjunctiveQuery q = HasTwoPath();
  ConjunctiveQuery m1 = MinimizeCq(q);
  ConjunctiveQuery m2 = MinimizeCq(m1);
  EXPECT_EQ(m1.NumAtoms(true), m2.NumAtoms(true));
  EXPECT_TRUE(AreEquivalent(m1, m2));
}

TEST(CoreTest, CycleIsItsOwnCore) {
  // A directed 3-cycle (no distinguished values) is a core.
  Database db(GraphSchema());
  testing::AddCycle(db, "c", 3);
  Database core = CoreOf(db, {});
  EXPECT_EQ(core.size(), 3u);
}

TEST(CoreTest, SixCycleRetractsToThreeCycleWhenBothPresent) {
  Database db(GraphSchema());
  testing::AddCycle(db, "a", 6);
  testing::AddCycle(db, "b", 3);
  Database core = CoreOf(db, {});
  EXPECT_EQ(core.size(), 3u);  // The 6-cycle folds onto the 3-cycle.
}

TEST(ProductTest, PairProductOfPaths) {
  Database a(GraphSchema());
  auto pa = testing::AddPath(a, "a", 2);
  Database b(GraphSchema());
  auto pb = testing::AddPath(b, "b", 3);
  auto product = DirectProduct({&a, &b}, {{pa[0]}, {pb[0]}});
  ASSERT_TRUE(product.has_value());
  // E-facts: 2 * 3 = 6.
  EXPECT_EQ(product->db.size(), 6u);
  EXPECT_EQ(product->tuple.size(), 1u);
  EXPECT_EQ(product->db.value_name(product->tuple[0]), "a0|b0");
}

TEST(ProductTest, ProjectionsAreHomomorphisms) {
  Database a(GraphSchema());
  testing::AddCycle(a, "a", 4);
  Database b(GraphSchema());
  testing::AddCycle(b, "b", 6);
  auto product = DirectProduct({&a, &b}, {{}, {}});
  ASSERT_TRUE(product.has_value());
  EXPECT_TRUE(HomomorphismExists(product->db, a));
  EXPECT_TRUE(HomomorphismExists(product->db, b));
  // C4 x C6 contains a cycle of length lcm(4,6)=12 and maps into C2... but
  // there is no hom from C4 into the product unless gcd divides: the
  // product maps into both factors, and C4 -/-> C6.
  EXPECT_FALSE(HomomorphismExists(a, product->db));
}

TEST(ProductTest, UniversalProperty) {
  // q selects the product tuple iff q selects every factor tuple.
  Database a(GraphSchema());
  Value ea = AddEntity(a, "ea");
  testing::AddEdge(a, "ea", "t");
  testing::AddEdge(a, "t", "u");
  Database b(GraphSchema());
  Value eb = AddEntity(b, "eb");
  testing::AddEdge(b, "eb", "s");

  auto product = DirectProduct({&a, &b}, {{ea}, {eb}});
  ASSERT_TRUE(product.has_value());

  ConjunctiveQuery one_edge = HasOutEdge();
  ConjunctiveQuery two_path = HasTwoPath();
  CqEvaluator eval1(one_edge);
  CqEvaluator eval2(two_path);
  // Both factors satisfy one_edge -> product does.
  EXPECT_TRUE(eval1.Selects(product->db, product->tuple));
  // Factor b fails two_path -> product fails it.
  EXPECT_TRUE(eval2.Selects(a, {ea}));
  EXPECT_FALSE(eval2.Selects(b, {eb}));
  EXPECT_FALSE(eval2.Selects(product->db, product->tuple));
}

TEST(ProductTest, FactBudgetGuard) {
  Database a(GraphSchema());
  testing::AddCycle(a, "a", 10);
  Database b(GraphSchema());
  testing::AddCycle(b, "b", 10);
  EXPECT_FALSE(DirectProduct({&a, &b}, {{}, {}}, 50).has_value());
  EXPECT_TRUE(DirectProduct({&a, &b}, {{}, {}}, 100).has_value());
}

TEST(ProductTest, UnarySchemaProduct) {
  Database a(UnarySchema());
  Value ea = AddEntity(a, "ea");
  a.AddFact("R", {"ea"});
  Database b(UnarySchema());
  Value eb = AddEntity(b, "eb");
  b.AddFact("R", {"eb"});
  b.AddFact("S", {"eb"});
  auto product = DirectProduct({&a, &b}, {{ea}, {eb}});
  ASSERT_TRUE(product.has_value());
  // Eta: 1x1, R: 1x1, S: 0 (a has no S fact).
  EXPECT_EQ(product->db.size(), 2u);
}

}  // namespace
}  // namespace featsep
