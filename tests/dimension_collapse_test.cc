#include "core/dimension_collapse.h"

#include <algorithm>

#include <gtest/gtest.h>

#include "test_util.h"

namespace featsep {
namespace {

using ::featsep::testing::AddEntity;
using ::featsep::testing::UnarySchema;

/// Example 6.2's database: D = {R(a), S(a), S(c)} with entities a, b, c.
std::shared_ptr<Database> Example62Db() {
  auto db = std::make_shared<Database>(UnarySchema());
  AddEntity(*db, "a");
  AddEntity(*db, "b");
  AddEntity(*db, "c");
  db->AddFact("R", {"a"});
  db->AddFact("S", {"a"});
  db->AddFact("S", {"c"});
  return db;
}

TEST(CqDefinableSetsTest, Example62Family) {
  auto db = Example62Db();
  EntitySetFamily family = CqDefinableEntitySets(*db);
  Value a = db->FindValue("a");
  Value b = db->FindValue("b");
  Value c = db->FindValue("c");
  auto contains = [&](std::vector<Value> set) {
    std::sort(set.begin(), set.end());
    return std::find(family.begin(), family.end(), set) != family.end();
  };
  // Definable: {a} (by R(x)), {a,c} (by S(x)), everything (by Eta(x)),
  // and ∅ (R has no fact on... R(y) is satisfiable; but e.g. a query with
  // two distinct unary patterns... here ∅ comes from no relation lacking
  // an all-equal fact? All relations are unary so every fact is all-equal;
  // R nonempty, S nonempty, Eta nonempty → ∅ NOT definable this way).
  EXPECT_TRUE(contains({a}));
  EXPECT_TRUE(contains({a, c}));
  EXPECT_TRUE(contains({a, b, c}));
  // {b}, {c}, {b,c}, {a,b} are NOT CQ-definable (outputs are up-sets and
  // b is below everything).
  EXPECT_FALSE(contains({b}));
  EXPECT_FALSE(contains({c}));
  EXPECT_FALSE(contains({a, b}));
}

TEST(DimensionCollapseTest, CqFailsClosureOnExample62) {
  // Theorem 8.4: CQ does not have the dimension-collapse property; the
  // witness is exactly Example 6.2, where ({a,c} ∩ complement({a})) = {c}
  // is not definable-or-co-definable.
  auto db = Example62Db();
  EntitySetFamily family = CqDefinableEntitySets(*db);
  auto violation =
      FindIntersectionClosureViolation(family, db->Entities());
  EXPECT_TRUE(violation.has_value());
}

TEST(DimensionCollapseTest, FoSatisfiesClosureOnExample62) {
  // FO has the dimension-collapse property (Prop 8.1): orbit unions are
  // closed under intersection and complement.
  auto db = Example62Db();
  EntitySetFamily family = FoDefinableEntitySets(*db);
  auto violation =
      FindIntersectionClosureViolation(family, db->Entities());
  EXPECT_FALSE(violation.has_value());
}

TEST(FoDefinableSetsTest, OrbitsAreSingletonsOnAsymmetricData) {
  auto db = Example62Db();
  // a, b, c all have distinct pointed structures: 3 orbits, 8 unions.
  EXPECT_EQ(FoDefinableEntitySets(*db).size(), 8u);
}

TEST(FoDefinableSetsTest, SymmetricEntitiesShareOrbits) {
  auto db = std::make_shared<Database>(UnarySchema());
  AddEntity(*db, "x");
  AddEntity(*db, "y");  // x and y are interchangeable.
  AddEntity(*db, "z");
  db->AddFact("R", {"z"});
  // Orbits: {x, y} and {z}: 4 unions.
  EXPECT_EQ(FoDefinableEntitySets(*db).size(), 4u);
}

TEST(LinearFamilyTest, DetectsChains) {
  EXPECT_TRUE(IsLinearFamily({{0}, {0, 1}, {0, 1, 2}}));
  EXPECT_TRUE(IsLinearFamily({{}}));
  EXPECT_FALSE(IsLinearFamily({{0}, {1}}));
  EXPECT_FALSE(IsLinearFamily({{0, 1}, {1, 2}}));
}

TEST(LinearFamilyTest, DisjointPathsGiveLinearCqFamily) {
  // Prop 8.6 / Theorem 8.7: with entities at the heads of disjoint paths
  // of lengths 0..3, the hom preorder is a chain (the length-i head maps
  // onto every length-j head with j ≥ i), so the CQ-definable sets are the
  // nested up-sets {e_j : j ≥ i} — a linear family of unbounded size, the
  // source of the unbounded-dimension property.
  auto db = std::make_shared<Database>(testing::GraphSchema());
  for (std::size_t len : {0u, 1u, 2u, 3u}) {
    auto nodes = testing::AddPath(*db, "p" + std::to_string(len) + "_", len);
    db->AddFact(db->schema().entity_relation(), {nodes[0]});
  }
  EntitySetFamily family = CqDefinableEntitySets(*db);
  EXPECT_TRUE(IsLinearFamily(family));
  EXPECT_GE(family.size(), 5u);  // 4 nested up-sets plus the empty set.
}

TEST(LinearFamilyTest, SinglePathWithAllEntitiesIsNotLinear) {
  // Contrast: entities at every node of ONE path do not form a linear
  // family — a directed path is a core, so distinct positions are
  // hom-incomparable and products carve out incomparable "interior" sets.
  auto db = std::make_shared<Database>(testing::GraphSchema());
  auto nodes = testing::AddPath(*db, "n", 3);
  for (Value v : nodes) {
    db->AddFact(db->schema().entity_relation(), {v});
  }
  EXPECT_FALSE(IsLinearFamily(CqDefinableEntitySets(*db)));
}

}  // namespace
}  // namespace featsep
