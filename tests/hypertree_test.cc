#include <gtest/gtest.h>

#include "hypertree/decomposition.h"
#include "hypertree/ghw.h"
#include "hypertree/htw.h"
#include "hypertree/hypergraph.h"
#include "test_util.h"
#include "testing/reference_ghw.h"

namespace featsep {
namespace {

using ::featsep::testing::GraphSchema;

/// An undirected cycle of length n as a hypergraph (n vertices, n 2-edges).
Hypergraph CycleHypergraph(std::size_t n) {
  Hypergraph g;
  for (std::size_t i = 0; i < n; ++i) g.AddVertex();
  for (std::size_t i = 0; i < n; ++i) g.AddEdge({i, (i + 1) % n});
  return g;
}

/// A path with n edges.
Hypergraph PathHypergraph(std::size_t edges) {
  Hypergraph g;
  for (std::size_t i = 0; i <= edges; ++i) g.AddVertex();
  for (std::size_t i = 0; i < edges; ++i) g.AddEdge({i, i + 1});
  return g;
}

/// Clique on n vertices (all 2-edges).
Hypergraph CliqueHypergraph(std::size_t n) {
  Hypergraph g;
  for (std::size_t i = 0; i < n; ++i) g.AddVertex();
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) g.AddEdge({i, j});
  }
  return g;
}

TEST(HypergraphTest, EdgeCoverNumber) {
  Hypergraph g;
  for (int i = 0; i < 4; ++i) g.AddVertex();
  g.AddEdge({0, 1});
  g.AddEdge({2, 3});
  g.AddEdge({1, 2});
  EXPECT_EQ(g.EdgeCoverNumber({0, 1}), 1u);
  EXPECT_EQ(g.EdgeCoverNumber({0, 1, 2, 3}), 2u);
  EXPECT_EQ(g.EdgeCoverNumber({}), 0u);
  // Vertex 0 and 3 need two distinct edges.
  EXPECT_EQ(g.EdgeCoverNumber({0, 3}), 2u);
}

TEST(HypergraphTest, EdgeComponentsSplitBySeparator) {
  Hypergraph g = PathHypergraph(4);  // Edges {0,1},{1,2},{2,3},{3,4}.
  // Separating at vertex 2 splits edges {0,1},{1,2} from {2,3},{3,4}.
  auto components = g.EdgeComponents({0, 1, 2, 3}, {2});
  EXPECT_EQ(components.size(), 2u);
  // No separator: a single component.
  EXPECT_EQ(g.EdgeComponents({0, 1, 2, 3}, {}).size(), 1u);
}

TEST(GhwTest, AcyclicQueriesHaveWidthOne) {
  EXPECT_EQ(Ghw(PathHypergraph(5)), 1u);
  Hypergraph star;
  for (int i = 0; i < 5; ++i) star.AddVertex();
  for (std::size_t i = 1; i < 5; ++i) star.AddEdge({0, i});
  EXPECT_EQ(Ghw(star), 1u);
}

TEST(GhwTest, CyclesHaveWidthTwo) {
  for (std::size_t n : {4u, 5u, 6u, 7u}) {
    EXPECT_EQ(Ghw(CycleHypergraph(n)), 2u) << "cycle length " << n;
  }
}

TEST(GhwTest, TriangleIsAcyclicAsHypergraph) {
  // The 3-cycle with 2-edges: bag {0,1,2} needs 2 edges to cover, so ghw 2.
  EXPECT_EQ(Ghw(CycleHypergraph(3)), 2u);
  // But a single 3-edge covering all vertices gives width 1.
  Hypergraph g;
  for (int i = 0; i < 3; ++i) g.AddVertex();
  g.AddEdge({0, 1, 2});
  g.AddEdge({0, 1});
  EXPECT_EQ(Ghw(g), 1u);
}

TEST(GhwTest, CliqueWidthGrows) {
  // K4 with 2-edges: any decomposition needs a bag with >= 2-edge cover;
  // ghw(K_n) = ceil(n/2) for cliques with 2-edges.
  EXPECT_EQ(Ghw(CliqueHypergraph(4)), 2u);
  EXPECT_EQ(Ghw(CliqueHypergraph(5)), 3u);
  EXPECT_EQ(Ghw(CliqueHypergraph(6)), 3u);
}

TEST(GhwTest, EmptyAndTrivialHypergraphs) {
  Hypergraph empty;
  EXPECT_EQ(Ghw(empty), 0u);
  Hypergraph one_edge;
  one_edge.AddVertex();
  one_edge.AddVertex();
  one_edge.AddEdge({0, 1});
  EXPECT_EQ(Ghw(one_edge), 1u);
}

TEST(GhwTest, DisconnectedComponentsDecomposeIndependently) {
  Hypergraph g;
  for (int i = 0; i < 8; ++i) g.AddVertex();
  // Component 1: 4-cycle (ghw 2). Component 2: path (ghw 1).
  g.AddEdge({0, 1});
  g.AddEdge({1, 2});
  g.AddEdge({2, 3});
  g.AddEdge({3, 0});
  g.AddEdge({4, 5});
  g.AddEdge({5, 6});
  g.AddEdge({6, 7});
  EXPECT_EQ(Ghw(g), 2u);
}

TEST(GhwTest, WitnessDecompositionValidates) {
  for (std::size_t n : {4u, 6u}) {
    Hypergraph g = CycleHypergraph(n);
    auto td = DecideGhwAtMost(g, 2);
    ASSERT_TRUE(td.has_value());
    std::string error;
    EXPECT_TRUE(ValidateDecomposition(g, *td, 2, &error)) << error;
    EXPECT_FALSE(DecideGhwAtMost(g, 1).has_value());
  }
}

TEST(ValidateDecompositionTest, RejectsBadDecompositions) {
  Hypergraph g = PathHypergraph(2);  // Edges {0,1},{1,2}.
  // Missing edge coverage.
  TreeDecomposition td;
  td.nodes.push_back({{0, 1}, {}});
  std::string error;
  EXPECT_FALSE(ValidateDecomposition(g, td, 1, &error));
  // A correct decomposition: {0,1} -- {1,2}.
  TreeDecomposition td2;
  td2.nodes.push_back({{0, 1}, {1}});
  td2.nodes.push_back({{1, 2}, {}});
  EXPECT_TRUE(ValidateDecomposition(g, td2, 1, &error)) << error;
  // Now break connectedness: vertex 1 in nodes 0 and 2 with node 1 between.
  TreeDecomposition td3;
  td3.nodes.push_back({{0, 1}, {1}});
  td3.nodes.push_back({{2}, {2}});
  td3.nodes.push_back({{1, 2}, {}});
  EXPECT_FALSE(ValidateDecomposition(g, td3, 1, &error));
}

TEST(ReferenceGhwTest, RefEdgeCoverNumberMatchesKnownAnswers) {
  Hypergraph g;
  for (int i = 0; i < 4; ++i) g.AddVertex();
  g.AddEdge({0, 1});
  g.AddEdge({2, 3});
  g.AddEdge({1, 2});
  EXPECT_EQ(testing::RefEdgeCoverNumber(g, {0, 1}), 1u);
  EXPECT_EQ(testing::RefEdgeCoverNumber(g, {0, 1, 2, 3}), 2u);
  EXPECT_EQ(testing::RefEdgeCoverNumber(g, {}), 0u);
  EXPECT_EQ(testing::RefEdgeCoverNumber(g, {0, 3}), 2u);
  // Agreement with the branch-and-bound implementation on the same bags.
  for (const std::vector<HVertex>& bag :
       {std::vector<HVertex>{0, 1}, {0, 1, 2, 3}, {}, {0, 3}, {1, 3}}) {
    EXPECT_EQ(testing::RefEdgeCoverNumber(g, bag), g.EdgeCoverNumber(bag));
  }
  // Uncoverable vertex: one more than the edge count.
  Hypergraph isolated;
  isolated.AddVertex();
  isolated.AddVertex();
  isolated.AddEdge({0});
  EXPECT_EQ(testing::RefEdgeCoverNumber(isolated, {1}),
            isolated.num_edges() + 1);
}

TEST(ReferenceGhwTest, AgreesWithValidateDecomposition) {
  Hypergraph g = PathHypergraph(2);  // Edges {0,1},{1,2}.
  std::string error;
  // Missing edge coverage: both validators reject.
  TreeDecomposition td;
  td.nodes.push_back({{0, 1}, {}});
  EXPECT_FALSE(testing::RefValidateDecomposition(g, td, 1, &error));
  EXPECT_FALSE(ValidateDecomposition(g, td, 1));
  // A correct width-1 decomposition: both accept at 1, reject at 0.
  TreeDecomposition td2;
  td2.nodes.push_back({{0, 1}, {1}});
  td2.nodes.push_back({{1, 2}, {}});
  EXPECT_TRUE(testing::RefValidateDecomposition(g, td2, 1, &error)) << error;
  EXPECT_TRUE(ValidateDecomposition(g, td2, 1));
  EXPECT_FALSE(testing::RefValidateDecomposition(g, td2, 0, &error));
  EXPECT_FALSE(ValidateDecomposition(g, td2, 0));
  // Broken connectedness: both reject.
  TreeDecomposition td3;
  td3.nodes.push_back({{0, 1}, {1}});
  td3.nodes.push_back({{2}, {2}});
  td3.nodes.push_back({{1, 2}, {}});
  EXPECT_FALSE(testing::RefValidateDecomposition(g, td3, 1, &error));
  EXPECT_FALSE(ValidateDecomposition(g, td3, 1));
  // Malformed tree (unreachable node): the reference rejects it outright.
  TreeDecomposition td4;
  td4.nodes.push_back({{0, 1}, {}});
  td4.nodes.push_back({{1, 2}, {}});  // Not a child of anything.
  EXPECT_FALSE(testing::RefValidateDecomposition(g, td4, 1, &error));
  // Solver witnesses cross-validate on cycles.
  for (std::size_t n : {4u, 5u, 6u}) {
    Hypergraph cycle = CycleHypergraph(n);
    auto witness = DecideGhwAtMost(cycle, 2);
    ASSERT_TRUE(witness.has_value());
    EXPECT_TRUE(testing::RefValidateDecomposition(cycle, *witness, 2, &error))
        << error;
  }
}

TEST(HtwTest, AcyclicHypergraphsHaveWidthOne) {
  EXPECT_EQ(Htw(PathHypergraph(5)), 1u);
}

TEST(HtwTest, CyclesHaveWidthTwo) {
  for (std::size_t n : {4u, 5u, 6u}) {
    EXPECT_EQ(Htw(CycleHypergraph(n)), 2u) << n;
  }
}

TEST(HtwTest, WitnessValidates) {
  Hypergraph g = CycleHypergraph(6);
  auto htd = DecideHtwAtMost(g, 2);
  ASSERT_TRUE(htd.has_value());
  std::string error;
  EXPECT_TRUE(ValidateHypertreeDecomposition(g, *htd, 2, &error)) << error;
  EXPECT_FALSE(DecideHtwAtMost(g, 1).has_value());
}

TEST(HtwTest, SandwichedByGhw) {
  // ghw <= htw <= 3*ghw + 1 on assorted hypergraphs.
  std::vector<Hypergraph> graphs;
  graphs.push_back(PathHypergraph(4));
  graphs.push_back(CycleHypergraph(5));
  graphs.push_back(CliqueHypergraph(4));
  graphs.push_back(CliqueHypergraph(5));
  for (const Hypergraph& g : graphs) {
    std::size_t ghw = Ghw(g);
    std::size_t htw = Htw(g);
    EXPECT_LE(ghw, htw) << g.ToString();
    EXPECT_LE(htw, 3 * ghw + 1) << g.ToString();
  }
}

TEST(HtwTest, EmptyHypergraph) {
  Hypergraph empty;
  EXPECT_EQ(Htw(empty), 0u);
}

TEST(QueryGhwTest, EntityAtomDoesNotInflateWidth) {
  // q(x) :- Eta(x), E(x,y): one existential variable, ghw 1.
  ConjunctiveQuery q = ConjunctiveQuery::MakeFeatureQuery(GraphSchema());
  Variable x = q.free_variable();
  Variable y = q.NewVariable("y");
  q.AddAtom(q.schema().FindRelation("E"), {x, y});
  EXPECT_EQ(QueryGhw(q), 1u);
  EXPECT_TRUE(IsInGhw(q, 1));
}

TEST(QueryGhwTest, CycleQueryThroughFreeVariableDropsWidth) {
  // A cycle x -> y1 -> y2 -> x: the free variable x is excluded from the
  // hypergraph (Chen–Dalmau coverwidth), so only y1, y2 remain; the edge
  // {y1, y2} plus unary-ish projections keep ghw at 1.
  ConjunctiveQuery q = ConjunctiveQuery::MakeFeatureQuery(GraphSchema());
  Variable x = q.free_variable();
  Variable y1 = q.NewVariable("y1");
  Variable y2 = q.NewVariable("y2");
  RelationId e = q.schema().FindRelation("E");
  q.AddAtom(e, {x, y1});
  q.AddAtom(e, {y1, y2});
  q.AddAtom(e, {y2, x});
  EXPECT_EQ(QueryGhw(q), 1u);
}

TEST(QueryGhwTest, ExistentialCycleHasWidthTwo) {
  // Cycle entirely within existential variables: y1..y4.
  ConjunctiveQuery q = ConjunctiveQuery::MakeFeatureQuery(GraphSchema());
  RelationId e = q.schema().FindRelation("E");
  std::vector<Variable> y;
  for (int i = 0; i < 4; ++i) y.push_back(q.NewVariable());
  for (int i = 0; i < 4; ++i) q.AddAtom(e, {y[i], y[(i + 1) % 4]});
  // Connect to x so the query is a sensible feature.
  q.AddAtom(e, {q.free_variable(), y[0]});
  EXPECT_EQ(QueryGhw(q), 2u);
  EXPECT_FALSE(IsInGhw(q, 1));
  EXPECT_TRUE(IsInGhw(q, 2));
}

TEST(QueryGhwTest, CqMIsInGhwM) {
  // Paper, Section 5: every CQ with at most m atoms lies in GHW(m).
  ConjunctiveQuery q = ConjunctiveQuery::MakeFeatureQuery(GraphSchema());
  RelationId e = q.schema().FindRelation("E");
  Variable x = q.free_variable();
  std::vector<Variable> y;
  for (int i = 0; i < 3; ++i) y.push_back(q.NewVariable());
  q.AddAtom(e, {x, y[0]});
  q.AddAtom(e, {y[0], y[1]});
  q.AddAtom(e, {y[1], y[2]});
  std::size_t m = q.NumAtoms(false);
  EXPECT_TRUE(IsInGhw(q, m));
}

}  // namespace
}  // namespace featsep
