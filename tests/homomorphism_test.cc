#include "cq/homomorphism.h"

#include <memory>
#include <random>

#include <gtest/gtest.h>

#include "relational/database.h"
#include "relational/schema.h"
#include "test_util.h"

namespace featsep {
namespace {

using ::featsep::testing::AddCycle;
using ::featsep::testing::AddPath;
using ::featsep::testing::GraphSchema;

TEST(HomomorphismTest, EmptySourceAlwaysMaps) {
  Database a(GraphSchema());
  Database b(GraphSchema());
  b.AddFact("E", {"x", "y"});
  EXPECT_TRUE(HomomorphismExists(a, b));
  EXPECT_TRUE(HomomorphismExists(a, a));  // Even into the empty database.
}

TEST(HomomorphismTest, PathIntoLongerPath) {
  Database a(GraphSchema());
  AddPath(a, "p", 2);
  Database b(GraphSchema());
  AddPath(b, "q", 5);
  EXPECT_TRUE(HomomorphismExists(a, b));
}

TEST(HomomorphismTest, LongerPathIntoShorterPathFails) {
  // A 4-edge path has no hom into a 2-edge path (paths are cores among
  // paths of distinct lengths... actually any path maps into any path of
  // length >= 1? No: a directed path CAN fold only onto prefixes of equal
  // direction; 4-edge path into 2-edge path has no hom since the 2-edge
  // path is a DAG with 3 levels and the 4-edge path needs 5 levels.
  Database a(GraphSchema());
  AddPath(a, "p", 4);
  Database b(GraphSchema());
  AddPath(b, "q", 2);
  EXPECT_FALSE(HomomorphismExists(a, b));
}

TEST(HomomorphismTest, AnythingMapsIntoSelfLoop) {
  Database a(GraphSchema());
  AddCycle(a, "c", 7);
  AddPath(a, "p", 3);
  Database loop(GraphSchema());
  loop.AddFact("E", {"v", "v"});
  EXPECT_TRUE(HomomorphismExists(a, loop));
  EXPECT_FALSE(HomomorphismExists(loop, a));  // No loop to map onto.
}

TEST(HomomorphismTest, CycleDivisibility) {
  // C_m -> C_n iff n divides m (directed cycles).
  for (std::size_t m : {3u, 4u, 6u, 9u}) {
    for (std::size_t n : {3u, 4u, 6u}) {
      Database a(GraphSchema());
      AddCycle(a, "a", m);
      Database b(GraphSchema());
      AddCycle(b, "b", n);
      bool expected = (m % n) == 0;
      EXPECT_EQ(HomomorphismExists(a, b), expected)
          << "C_" << m << " -> C_" << n;
    }
  }
}

TEST(HomomorphismTest, SeedForcesImages) {
  Database a(GraphSchema());
  auto p = AddPath(a, "p", 1);  // p0 -> p1
  Database b(GraphSchema());
  auto q = AddPath(b, "q", 2);  // q0 -> q1 -> q2
  // p0 can map to q0 or q1; forcing p0 -> q2 must fail (no outgoing edge).
  EXPECT_TRUE(HomomorphismExists(a, b, {{p[0], q[0]}}));
  EXPECT_TRUE(HomomorphismExists(a, b, {{p[0], q[1]}}));
  EXPECT_FALSE(HomomorphismExists(a, b, {{p[0], q[2]}}));
  // Conflicting double seed.
  EXPECT_FALSE(HomomorphismExists(a, b, {{p[0], q[0]}, {p[1], q[2]}}));
  EXPECT_TRUE(HomomorphismExists(a, b, {{p[0], q[0]}, {p[1], q[1]}}));
}

TEST(HomomorphismTest, MappingIsAValidHomomorphism) {
  Database a(GraphSchema());
  AddCycle(a, "a", 6);
  Database b(GraphSchema());
  AddCycle(b, "b", 3);
  HomResult result = FindHomomorphism(a, b);
  ASSERT_EQ(result.status, HomStatus::kFound);
  RelationId e = a.schema().FindRelation("E");
  for (const Fact& fact : a.facts()) {
    Fact image{e, {result.mapping[fact.args[0]], result.mapping[fact.args[1]]}};
    EXPECT_TRUE(b.ContainsFact(image));
  }
}

TEST(HomomorphismTest, RepeatedVariablePositions) {
  // E(x, x) in the source requires a self-loop in the target.
  Database a(GraphSchema());
  a.AddFact("E", {"u", "u"});
  Database no_loop(GraphSchema());
  AddCycle(no_loop, "c", 3);
  EXPECT_FALSE(HomomorphismExists(a, no_loop));
  Database loop(GraphSchema());
  loop.AddFact("E", {"v", "v"});
  EXPECT_TRUE(HomomorphismExists(a, loop));
}

TEST(HomomorphismTest, BudgetExhaustion) {
  // A moderately hard instance with a tiny node budget must report
  // exhaustion rather than an answer.
  Database a(GraphSchema());
  AddCycle(a, "a", 9);
  Database b(GraphSchema());
  AddCycle(b, "b", 6);
  AddCycle(b, "c", 4);
  HomOptions options;
  options.max_nodes = 1;
  HomResult result = FindHomomorphism(a, b, {}, options);
  EXPECT_NE(result.status, HomStatus::kFound);
}

TEST(HomomorphismTest, BudgetExhaustionMidSearch) {
  // Hitting max_nodes partway through a search must report kExhausted — a
  // truncated refutation is not a refutation.
  Database a(GraphSchema());
  AddCycle(a, "a", 9);
  Database b(GraphSchema());
  AddCycle(b, "b", 6);
  AddCycle(b, "c", 4);
  HomResult full = FindHomomorphism(a, b);
  ASSERT_EQ(full.status, HomStatus::kNone);  // 9 divides neither 6 nor 4.
  ASSERT_GT(full.nodes, 2u);
  HomOptions options;
  options.max_nodes = full.nodes / 2;
  HomResult truncated = FindHomomorphism(a, b, {}, options);
  EXPECT_EQ(truncated.status, HomStatus::kExhausted);
  EXPECT_LE(truncated.nodes, options.max_nodes);
  // A budget past the full search's needs leaves the answer intact.
  options.max_nodes = full.nodes * 2 + 1;
  EXPECT_EQ(FindHomomorphism(a, b, {}, options).status, HomStatus::kNone);
}

TEST(HomomorphismTest, EarlyDomainWipeoutPopulatesResult) {
  // Unary-constraint failure (the target has no E facts at all) returns
  // kNone with zero nodes and no mapping — the pre-search early exit.
  Database a(GraphSchema());
  a.AddFact("E", {"u", "v"});
  Database b(GraphSchema());
  b.AddFact("Eta", {"w"});  // Nonempty domain, but no E facts.
  HomResult result = FindHomomorphism(a, b);
  EXPECT_EQ(result.status, HomStatus::kNone);
  EXPECT_EQ(result.nodes, 0u);
  EXPECT_TRUE(result.mapping.empty());
}

TEST(HomomorphismTest, SeedSourceOutsideDomainIsCopied) {
  Database a(GraphSchema());
  auto p = AddPath(a, "p", 1);
  Value isolated = a.Intern("iso");  // Interned but occurs in no fact.
  Database b(GraphSchema());
  auto q = AddPath(b, "q", 2);
  HomResult result =
      FindHomomorphism(a, b, {{isolated, q[2]}, {p[0], q[0]}});
  ASSERT_EQ(result.status, HomStatus::kFound);
  EXPECT_EQ(result.mapping[isolated], q[2]);  // Unconstrained, copied.
  EXPECT_EQ(result.mapping[p[0]], q[0]);
  EXPECT_EQ(result.mapping[p[1]], q[1]);

  // A seed source never interned in `a` at all is simply dropped.
  Value alien = static_cast<Value>(a.num_values() + 7);
  HomResult dropped = FindHomomorphism(a, b, {{alien, q[0]}});
  ASSERT_EQ(dropped.status, HomStatus::kFound);
  EXPECT_EQ(dropped.mapping.size(), a.num_values());
}

TEST(HomomorphismTest, PreferHintSteersWitnessNotDecision) {
  Database a(GraphSchema());
  auto p = AddPath(a, "p", 1);  // p0 -> p1
  Database b(GraphSchema());
  auto q = AddPath(b, "q", 2);  // q0 -> q1 -> q2
  HomResult plain = FindHomomorphism(a, b);
  ASSERT_EQ(plain.status, HomStatus::kFound);
  EXPECT_EQ(plain.mapping[p[0]], q[0]);  // First candidate in domain order.

  HomOptions options;
  options.prefer = {{p[0], q[1]}};
  HomResult hinted = FindHomomorphism(a, b, {}, options);
  ASSERT_EQ(hinted.status, HomStatus::kFound);
  EXPECT_EQ(hinted.mapping[p[0]], q[1]);  // Hint tried first, and it works.

  // An infeasible hint (q2 has no outgoing edge) costs one branch but
  // cannot change the decision.
  options.prefer = {{p[0], q[2]}};
  HomResult infeasible = FindHomomorphism(a, b, {}, options);
  ASSERT_EQ(infeasible.status, HomStatus::kFound);
  EXPECT_EQ(infeasible.mapping[p[0]], q[0]);
}

namespace {
std::shared_ptr<const Schema> TernarySchema() {
  Schema schema;
  schema.AddRelation("R", 3);
  return std::make_shared<const Schema>(std::move(schema));
}
}  // namespace

TEST(HomomorphismTest, TernaryFactNeedsOneTargetFactForAllPositions) {
  // Pairwise position supports are not enough at arity 3: each pair of the
  // seeded images co-occurs in some target fact, but no single target fact
  // carries all three. The engine must reject the seeded assignment.
  auto schema = TernarySchema();
  Database source(schema);
  source.AddFact("R", {"x", "y", "z"});
  Database target(schema);
  target.AddFact("R", {"a", "b", "c1"});
  target.AddFact("R", {"a", "b1", "c"});
  target.AddFact("R", {"a1", "b", "c"});
  Value x = source.FindValue("x");
  Value y = source.FindValue("y");
  Value z = source.FindValue("z");
  Value va = target.FindValue("a");
  Value vb = target.FindValue("b");
  Value vc = target.FindValue("c");
  EXPECT_FALSE(HomomorphismExists(source, target,
                                  {{x, va}, {y, vb}, {z, vc}}));
  // Two of the three seeds are satisfiable (via R(a, b, c1)).
  EXPECT_TRUE(HomomorphismExists(source, target, {{x, va}, {y, vb}}));
  EXPECT_TRUE(HomomorphismExists(source, target));
}

TEST(HomomorphismTest, RepeatedVariablesInTernaryFact) {
  auto schema = TernarySchema();
  Database source(schema);
  source.AddFact("R", {"x", "x", "y"});  // Positions 0 and 1 must agree.
  Database unequal(schema);
  unequal.AddFact("R", {"u", "v", "w"});
  EXPECT_FALSE(HomomorphismExists(source, unequal));
  Database equal(schema);
  equal.AddFact("R", {"u", "v", "w"});
  equal.AddFact("R", {"t", "t", "s"});
  HomResult result = FindHomomorphism(source, equal);
  ASSERT_EQ(result.status, HomStatus::kFound);
  EXPECT_EQ(result.mapping[source.FindValue("x")], equal.FindValue("t"));
  EXPECT_EQ(result.mapping[source.FindValue("y")], equal.FindValue("s"));

  // All-positions-repeated: R(x, x, x) needs a fully diagonal target fact.
  Database diag_source(schema);
  diag_source.AddFact("R", {"x", "x", "x"});
  EXPECT_FALSE(HomomorphismExists(diag_source, equal));
  Database diag(schema);
  diag.AddFact("R", {"d", "d", "d"});
  EXPECT_TRUE(HomomorphismExists(diag_source, diag));
}

TEST(HomomorphismTest, HomEquivalentEntities) {
  Database db(GraphSchema());
  auto e1 = testing::AddEntity(db, "e1");
  auto e2 = testing::AddEntity(db, "e2");
  auto e3 = testing::AddEntity(db, "e3");
  testing::AddEdge(db, "e1", "t1");
  testing::AddEdge(db, "e2", "t2");
  // e3 has no outgoing edge.
  EXPECT_TRUE(HomEquivalent(db, {e1}, db, {e2}));
  EXPECT_FALSE(HomEquivalent(db, {e1}, db, {e3}));
  // e3's structure maps into e1's side but not conversely.
  EXPECT_TRUE(HomomorphismExists(db, db, {{e3, e1}}));
  EXPECT_FALSE(HomomorphismExists(db, db, {{e1, e3}}));
}

// Property test: homomorphisms compose — if A -> B and B -> C then A -> C,
// checked on random graph databases.
TEST(HomomorphismPropertyTest, Composition) {
  std::mt19937_64 rng(3);
  auto random_graph = [&](int nodes, int edges, const std::string& prefix) {
    Database db(GraphSchema());
    std::vector<Value> vs;
    for (int i = 0; i < nodes; ++i) {
      vs.push_back(db.Intern(prefix + std::to_string(i)));
    }
    RelationId e = db.schema().FindRelation("E");
    for (int i = 0; i < edges; ++i) {
      db.AddFact(e, {vs[rng() % vs.size()], vs[rng() % vs.size()]});
    }
    return db;
  };
  int transitive_checks = 0;
  for (int trial = 0; trial < 60; ++trial) {
    Database a = random_graph(4, 5, "a");
    Database b = random_graph(4, 6, "b");
    Database c = random_graph(4, 7, "c");
    bool ab = HomomorphismExists(a, b);
    bool bc = HomomorphismExists(b, c);
    if (ab && bc) {
      EXPECT_TRUE(HomomorphismExists(a, c));
      ++transitive_checks;
    }
  }
  EXPECT_GT(transitive_checks, 0) << "vacuous property test";
}

// Property test: the witness returned by FindHomomorphism always preserves
// all facts, across random instances.
TEST(HomomorphismPropertyTest, WitnessSoundness) {
  std::mt19937_64 rng(17);
  for (int trial = 0; trial < 80; ++trial) {
    Database a(GraphSchema());
    Database b(GraphSchema());
    RelationId e = a.schema().FindRelation("E");
    for (int i = 0; i < 6; ++i) {
      a.AddFact(e, {a.Intern("a" + std::to_string(rng() % 4)),
                    a.Intern("a" + std::to_string(rng() % 4))});
      b.AddFact(e, {b.Intern("b" + std::to_string(rng() % 5)),
                    b.Intern("b" + std::to_string(rng() % 5))});
    }
    HomResult result = FindHomomorphism(a, b);
    if (result.status != HomStatus::kFound) continue;
    for (const Fact& fact : a.facts()) {
      Fact image{fact.relation,
                 {result.mapping[fact.args[0]], result.mapping[fact.args[1]]}};
      EXPECT_TRUE(b.ContainsFact(image));
    }
  }
}


// Regression: a stale `prefer` witness — pairs whose source or image ids do
// not exist in the current pair of databases (e.g. replayed from a search
// against a different database) — must be ignored, not crash or change the
// decision. HomEquivalent replays forward witnesses this way, so junk here
// would bias every pairwise equivalence sweep.
TEST(HomomorphismTest, StalePreferHintIsIgnored) {
  auto schema = GraphSchema();
  Database a(schema);
  std::vector<Value> p = AddPath(a, "p", 2);
  Database b(schema);
  std::vector<Value> q = AddPath(b, "q", 4);

  HomOptions stale;
  stale.prefer = {
      // Source id far outside dom(a); image far outside dom(b).
      {static_cast<Value>(a.num_values() + 100),
       static_cast<Value>(b.num_values() + 100)},
      // Valid source paired with a nonexistent image.
      {p[0], static_cast<Value>(b.num_values() + 7)},
      // Nonexistent source paired with a valid image.
      {static_cast<Value>(a.num_values() + 1), q[0]},
  };
  HomResult with_stale = FindHomomorphism(a, b, {}, stale);
  ASSERT_EQ(with_stale.status, HomStatus::kFound);
  // The witness is still a real homomorphism.
  for (const Fact& fact : a.facts()) {
    if (fact.args.size() != 2) continue;
    Fact image{fact.relation,
               {with_stale.mapping[fact.args[0]],
                with_stale.mapping[fact.args[1]]}};
    EXPECT_TRUE(b.ContainsFact(image));
  }

  // Same stale hints on an instance with no homomorphism: decision holds.
  Database c(schema);
  AddPath(c, "s", 1);
  HomOptions stale2;
  stale2.prefer = {{static_cast<Value>(b.num_values() + 3),
                    static_cast<Value>(c.num_values() + 3)}};
  EXPECT_EQ(FindHomomorphism(b, c, {}, stale2).status, HomStatus::kNone);
}

TEST(HomomorphismTest, PreferValueOutsideTargetDomainIsIgnored) {
  // The image exists as an interned value of `to` but carries no facts, so
  // it is outside dom(to): the hint must be dropped, and the search must
  // still find the real homomorphism.
  auto schema = GraphSchema();
  Database a(schema);
  std::vector<Value> p = AddPath(a, "p", 1);
  Database b(schema);
  std::vector<Value> q = AddPath(b, "q", 1);
  Value isolated = b.Intern("isolated");  // Interned, not in any fact.

  HomOptions options;
  options.prefer = {{p[0], isolated}, {p[1], isolated}};
  HomResult result = FindHomomorphism(a, b, {}, options);
  ASSERT_EQ(result.status, HomStatus::kFound);
  EXPECT_EQ(result.mapping[p[0]], q[0]);
  EXPECT_EQ(result.mapping[p[1]], q[1]);
  EXPECT_NE(result.mapping[p[0]], isolated);
}

// Regression: sources with tens of thousands of variables (QBE products)
// must not overflow the stack — the search is iterative.
TEST(HomomorphismTest, VeryDeepInstances) {
  auto schema = GraphSchema();
  Database big(schema);
  RelationId e = schema->FindRelation("E");
  Value prev = big.Intern("n0");
  for (int i = 1; i <= 60000; ++i) {
    Value next = big.Intern("n" + std::to_string(i));
    big.AddFact(e, {prev, next});
    prev = next;
  }
  Database loop(schema);
  loop.AddFact("E", {"v", "v"});
  EXPECT_TRUE(HomomorphismExists(big, loop));
  // And a failing deep search: a long path into a shorter path.
  Database short_path(schema);
  AddPath(short_path, "s", 3);
  EXPECT_FALSE(HomomorphismExists(big, short_path));
}

}  // namespace
}  // namespace featsep
