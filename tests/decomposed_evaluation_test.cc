#include "cq/decomposed_evaluation.h"

#include <gtest/gtest.h>

#include "cq/evaluation.h"
#include "io/cq_parser.h"
#include "test_util.h"
#include "testing/random_instance.h"
#include "testing/reference_hom.h"
#include "workload/generators.h"

namespace featsep {
namespace {

using ::featsep::testing::AddCycle;
using ::featsep::testing::AddEntity;
using ::featsep::testing::GraphSchema;

ConjunctiveQuery Parse(const std::string& text) {
  auto q = ParseCq(GraphSchema(), text);
  EXPECT_TRUE(q.ok()) << q.error().message();
  return q.value();
}

TEST(DecomposedEvaluationTest, AcyclicQueryWidthOne) {
  ConjunctiveQuery q = Parse("q(x) :- Eta(x), E(x, y), E(y, z)");
  auto evaluator = DecomposedEvaluator::Create(q, 1);
  ASSERT_TRUE(evaluator.has_value());
  EXPECT_LE(evaluator->width(), 1u);

  Database db(GraphSchema());
  Value e1 = AddEntity(db, "e1");
  Value e2 = AddEntity(db, "e2");
  testing::AddEdge(db, "e1", "a");
  testing::AddEdge(db, "a", "b");
  testing::AddEdge(db, "e2", "c");
  EXPECT_TRUE(evaluator->SelectsEntity(db, e1));
  EXPECT_FALSE(evaluator->SelectsEntity(db, e2));
  EXPECT_EQ(evaluator->Evaluate(db), (std::vector<Value>{e1}));
}

TEST(DecomposedEvaluationTest, CyclicQueryNeedsWidthTwo) {
  // Existential 4-cycle reachable from x: ghw 2.
  ConjunctiveQuery q = Parse(
      "q(x) :- Eta(x), E(x, y1), E(y1, y2), E(y2, y3), E(y3, y4), "
      "E(y4, y1)");
  EXPECT_FALSE(DecomposedEvaluator::Create(q, 1).has_value());
  auto evaluator = DecomposedEvaluator::Create(q, 2);
  ASSERT_TRUE(evaluator.has_value());

  Database db(GraphSchema());
  RelationId edge = db.schema().FindRelation("E");
  Value on4 = AddEntity(db, "on4");
  auto c4 = AddCycle(db, "c4_", 4);
  db.AddFact(edge, {on4, c4[0]});
  Value on3 = AddEntity(db, "on3");
  auto c3 = AddCycle(db, "c3_", 3);
  db.AddFact(edge, {on3, c3[0]});
  EXPECT_TRUE(evaluator->SelectsEntity(db, on4));
  EXPECT_FALSE(evaluator->SelectsEntity(db, on3));
}

TEST(DecomposedEvaluationTest, GroundAtomsChecked) {
  // Self-loop on x: a ground check.
  ConjunctiveQuery q = Parse("q(x) :- Eta(x), E(x, x)");
  auto evaluator = DecomposedEvaluator::Create(q, 1);
  ASSERT_TRUE(evaluator.has_value());
  Database db(GraphSchema());
  Value looped = AddEntity(db, "l");
  Value plain = AddEntity(db, "p");
  db.AddFact("E", {"l", "l"});
  db.AddFact("E", {"p", "q"});
  EXPECT_TRUE(evaluator->SelectsEntity(db, looped));
  EXPECT_FALSE(evaluator->SelectsEntity(db, plain));
}

TEST(DecomposedEvaluationTest, DisconnectedConjunct) {
  // A Boolean side condition: some 2-cycle exists somewhere.
  ConjunctiveQuery q = Parse("q(x) :- Eta(x), E(u, v), E(v, u)");
  auto evaluator = DecomposedEvaluator::Create(q, 1);
  ASSERT_TRUE(evaluator.has_value());
  Database with(GraphSchema());
  Value e1 = AddEntity(with, "e1");
  with.AddFact("E", {"a", "b"});
  with.AddFact("E", {"b", "a"});
  EXPECT_TRUE(evaluator->SelectsEntity(with, e1));
  Database without(GraphSchema());
  Value e2 = AddEntity(without, "e2");
  without.AddFact("E", {"a", "b"});
  EXPECT_FALSE(evaluator->SelectsEntity(without, e2));
}

// Differential property: the decomposition-guided evaluator agrees with
// the backtracking engine on random queries and random databases.
TEST(DecomposedEvaluationPropertyTest, AgreesWithBacktracking) {
  int compared = 0;
  for (std::uint64_t seed = 1; seed <= 25; ++seed) {
    ConjunctiveQuery q =
        RandomFeatureQuery(GraphSchema(), 1 + seed % 4, seed);
    auto decomposed = DecomposedEvaluator::Create(q, 2);
    if (!decomposed.has_value()) continue;  // ghw > 2; skip.
    RandomGraphParams params;
    params.num_entities = 5;
    params.num_background_nodes = 6;
    params.num_background_edges = 10;
    params.seed = seed + 100;
    auto training = RandomPlantedGraph(params);
    const Database& db = training->database();
    CqEvaluator backtracking(q);
    for (Value e : db.Entities()) {
      EXPECT_EQ(decomposed->SelectsEntity(db, e),
                backtracking.SelectsEntity(db, e))
          << q.ToString() << " at " << db.value_name(e);
      ++compared;
    }
  }
  EXPECT_GT(compared, 50);
}

TEST(DecomposedEvaluationTest, RandomInstancesMatchReferenceOracle) {
  // Differential sweep against the naive oracle (src/testing): random
  // schemas/queries/databases, comparing the decomposition-guided plan,
  // the backtracking evaluator, and brute force as ordered answer sets.
  std::size_t plans_built = 0;
  for (std::uint64_t seed = 1; seed <= 60; ++seed) {
    WorkloadRng rng(seed);
    testing::RandomSchemaParams sp;
    sp.num_relations = 2;
    sp.max_arity = 2;
    auto schema = testing::RandomSchema(sp, rng);
    testing::RandomCqParams cp;
    cp.num_atoms = rng.Range(1, 4);
    ConjunctiveQuery q = testing::RandomUnaryCq(schema, cp, rng);
    if (q.num_variables() > 6) continue;  // Keep the oracle affordable.
    testing::RandomDatabaseParams dp;
    dp.num_values = rng.Range(2, 5);
    dp.num_facts = rng.Range(4, 12);
    Database db = testing::RandomDatabase(schema, dp, rng);

    std::vector<Value> expected = testing::RefEvaluateUnaryCq(q, db);
    EXPECT_EQ(CqEvaluator(q).Evaluate(db), expected)
        << "seed " << seed << ": " << q.ToString();
    auto decomposed = DecomposedEvaluator::Create(q, 2);
    if (decomposed.has_value()) {
      ++plans_built;
      EXPECT_EQ(decomposed->Evaluate(db), expected)
          << "seed " << seed << ": " << q.ToString();
    }
  }
  EXPECT_GT(plans_built, 20u);  // The sweep must actually exercise plans.
}

}  // namespace
}  // namespace featsep
