#include "util/svo_bitset.h"

#include <utility>
#include <vector>

#include <gtest/gtest.h>

namespace featsep {
namespace {

// Sizes straddling every storage boundary: word edges and the inline↔heap
// transition at kInlineBits.
const std::size_t kBoundarySizes[] = {
    0,   1,   63,  64,  65,  127, 128, 129,
    SvoBitset::kInlineBits - 1, SvoBitset::kInlineBits,
    SvoBitset::kInlineBits + 1, 1000};

TEST(SvoBitsetTest, SetTestResetAcrossBoundaries) {
  for (std::size_t size : kBoundarySizes) {
    SvoBitset bits(size);
    EXPECT_EQ(bits.size(), size);
    EXPECT_EQ(bits.count(), 0u);
    EXPECT_TRUE(bits.empty());
    for (std::size_t i = 0; i < size; ++i) {
      EXPECT_FALSE(bits.test(i));
      bits.set(i);
      EXPECT_TRUE(bits.test(i));
    }
    EXPECT_EQ(bits.count(), size);
    for (std::size_t i = 0; i < size; ++i) {
      bits.reset(i);
      EXPECT_FALSE(bits.test(i));
    }
    EXPECT_TRUE(bits.empty());
  }
}

TEST(SvoBitsetTest, FilledConstructionMasksTailBits) {
  for (std::size_t size : kBoundarySizes) {
    SvoBitset bits(size, true);
    EXPECT_EQ(bits.count(), size);
    EXPECT_EQ(bits.find_first(), size == 0 ? SvoBitset::kNoBit : 0u);
  }
}

TEST(SvoBitsetTest, FindFirstAndNext) {
  SvoBitset bits(300);
  EXPECT_EQ(bits.find_first(), SvoBitset::kNoBit);
  bits.set(7);
  bits.set(64);
  bits.set(255);
  bits.set(299);
  EXPECT_EQ(bits.find_first(), 7u);
  EXPECT_EQ(bits.find_next(0), 7u);
  EXPECT_EQ(bits.find_next(7), 7u);
  EXPECT_EQ(bits.find_next(8), 64u);
  EXPECT_EQ(bits.find_next(65), 255u);
  EXPECT_EQ(bits.find_next(256), 299u);
  EXPECT_EQ(bits.find_next(300), SvoBitset::kNoBit);
}

TEST(SvoBitsetTest, ForEachVisitsSetBitsInOrder) {
  for (std::size_t size : {100ul, 1000ul}) {
    SvoBitset bits(size);
    std::vector<std::size_t> expected;
    for (std::size_t i = 3; i < size; i += 37) {
      bits.set(i);
      expected.push_back(i);
    }
    std::vector<std::size_t> seen;
    bits.for_each([&](std::size_t bit) { seen.push_back(bit); });
    EXPECT_EQ(seen, expected);
  }
}

TEST(SvoBitsetTest, IntersectUnionIntersects) {
  for (std::size_t size : {60ul, 500ul}) {
    SvoBitset a(size);
    SvoBitset b(size);
    for (std::size_t i = 0; i < size; i += 2) a.set(i);
    for (std::size_t i = 0; i < size; i += 3) b.set(i);
    EXPECT_TRUE(a.intersects(b));  // Multiples of 6.

    SvoBitset both = a;
    both.intersect_with(b);
    for (std::size_t i = 0; i < size; ++i) {
      EXPECT_EQ(both.test(i), i % 6 == 0) << i;
    }

    SvoBitset either = a;
    either.union_with(b);
    for (std::size_t i = 0; i < size; ++i) {
      EXPECT_EQ(either.test(i), i % 2 == 0 || i % 3 == 0) << i;
    }

    SvoBitset odd(size);
    for (std::size_t i = 1; i < size; i += 2) odd.set(i);
    EXPECT_FALSE(a.intersects(odd));
  }
}

TEST(SvoBitsetTest, CopyAndMoveAcrossInlineHeapBoundary) {
  for (std::size_t size :
       {SvoBitset::kInlineBits, SvoBitset::kInlineBits + 1}) {
    SvoBitset original(size);
    original.set(5);
    original.set(size - 1);

    SvoBitset copy(original);
    EXPECT_EQ(copy, original);
    copy.reset(5);
    EXPECT_NE(copy, original);          // Deep copy, no sharing.
    EXPECT_TRUE(original.test(5));

    SvoBitset moved(std::move(copy));
    EXPECT_FALSE(moved.test(5));
    EXPECT_TRUE(moved.test(size - 1));

    // Cross-size assignments reallocate/shrink correctly.
    SvoBitset small(8);
    small.set(3);
    small = original;
    EXPECT_EQ(small, original);
    SvoBitset big(2000, true);
    big = original;
    EXPECT_EQ(big, original);

    SvoBitset target(17);
    target = std::move(moved);
    EXPECT_EQ(target.size(), size);
    EXPECT_TRUE(target.test(size - 1));
  }
}

TEST(SvoBitsetTest, SetAllResetAll) {
  SvoBitset bits(70);
  bits.set_all();
  EXPECT_EQ(bits.count(), 70u);
  bits.reset_all();
  EXPECT_TRUE(bits.empty());
  EXPECT_EQ(bits.count(), 0u);
}

TEST(SvoBitsetTest, IntersectWithEmptyAtExactInlineBoundary) {
  // Regression guard for the 256-bit storage transition: a full bitset
  // intersected with an all-zero one of the same universe must clear every
  // word — including the last inline word at exactly kInlineBits, and the
  // first heap word one past it.
  for (std::size_t bits :
       {SvoBitset::kInlineBits - 1, SvoBitset::kInlineBits,
        SvoBitset::kInlineBits + 1}) {
    SvoBitset full(bits, true);
    SvoBitset empty(bits);
    ASSERT_EQ(full.count(), bits);
    full.intersect_with(empty);
    EXPECT_TRUE(full.empty()) << "universe " << bits;
    EXPECT_EQ(full.count(), 0u) << "universe " << bits;
    EXPECT_EQ(full.find_first(), SvoBitset::kNoBit) << "universe " << bits;
    EXPECT_FALSE(full.intersects(empty)) << "universe " << bits;
    // And the reverse orientation: empty stays empty.
    SvoBitset full2(bits, true);
    SvoBitset empty2(bits);
    empty2.intersect_with(full2);
    EXPECT_TRUE(empty2.empty()) << "universe " << bits;
  }
}

TEST(SvoBitsetTest, EqualityRequiresSameUniverse) {
  SvoBitset a(10);
  SvoBitset b(11);
  EXPECT_NE(a, b);
  SvoBitset c(10);
  EXPECT_EQ(a, c);
  c.set(9);
  EXPECT_NE(a, c);
}

// Deterministic pseudo-random pattern: bit i of a set iff the mixed hash of
// (seed, i) has its low bit set. Exercises the unrolled 4-word kernels on
// non-trivial word contents at every boundary size.
SvoBitset PatternBitset(std::size_t size, std::uint64_t seed) {
  SvoBitset bits(size);
  for (std::size_t i = 0; i < size; ++i) {
    std::uint64_t h = (seed + i) * 0x9e3779b97f4a7c15ULL;
    h ^= h >> 29;
    if (h & 1) bits.set(i);
  }
  return bits;
}

TEST(SvoBitsetTest, AndCountMatchesScalarAcrossBoundaries) {
  for (std::size_t size : kBoundarySizes) {
    SvoBitset a = PatternBitset(size, 1);
    SvoBitset b = PatternBitset(size, 2);
    std::size_t expected = 0;
    for (std::size_t i = 0; i < size; ++i) {
      if (a.test(i) && b.test(i)) ++expected;
    }
    EXPECT_EQ(a.and_count(b), expected) << "universe " << size;
    // The read-only probe must not modify either operand.
    EXPECT_EQ(a, PatternBitset(size, 1));
    EXPECT_EQ(b, PatternBitset(size, 2));
    EXPECT_EQ(a.intersects(b), expected != 0);
  }
}

TEST(SvoBitsetTest, IntersectWithCountFusesAndAndPopcount) {
  for (std::size_t size : kBoundarySizes) {
    SvoBitset a = PatternBitset(size, 3);
    SvoBitset b = PatternBitset(size, 4);
    SvoBitset reference = a;
    reference.intersect_with(b);
    std::size_t count = a.intersect_with_count(b);
    EXPECT_EQ(a, reference) << "universe " << size;
    EXPECT_EQ(count, reference.count()) << "universe " << size;
  }
}

TEST(SvoBitsetTest, AndNotWithMatchesScalarAcrossBoundaries) {
  for (std::size_t size : kBoundarySizes) {
    SvoBitset a = PatternBitset(size, 5);
    SvoBitset b = PatternBitset(size, 6);
    SvoBitset result = a;
    result.and_not_with(b);
    for (std::size_t i = 0; i < size; ++i) {
      EXPECT_EQ(result.test(i), a.test(i) && !b.test(i))
          << "universe " << size << " bit " << i;
    }
    // a \ a is empty; a \ empty is a.
    SvoBitset self = a;
    self.and_not_with(a);
    EXPECT_TRUE(self.empty());
    SvoBitset minus_empty = a;
    minus_empty.and_not_with(SvoBitset(size));
    EXPECT_EQ(minus_empty, a);
  }
}

TEST(SvoBitsetTest, FusedKernelsAgreeOnDisjointAndIdenticalSets) {
  for (std::size_t size : kBoundarySizes) {
    if (size == 0) continue;
    SvoBitset evens(size);
    SvoBitset odds(size);
    for (std::size_t i = 0; i < size; i += 2) evens.set(i);
    for (std::size_t i = 1; i < size; i += 2) odds.set(i);
    EXPECT_EQ(evens.and_count(odds), 0u);
    EXPECT_FALSE(evens.intersects(odds));
    EXPECT_EQ(evens.and_count(evens), evens.count());
    SvoBitset copy = evens;
    EXPECT_EQ(copy.intersect_with_count(odds), 0u);
    EXPECT_TRUE(copy.empty());
  }
}

}  // namespace
}  // namespace featsep
