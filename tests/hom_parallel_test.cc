#include <cstdint>
#include <iterator>
#include <memory>
#include <optional>
#include <random>
#include <vector>

#include <gtest/gtest.h>

#include "cq/hom_nogoods.h"
#include "cq/homomorphism.h"
#include "relational/database.h"
#include "relational/schema.h"
#include "test_util.h"
#include "util/budget.h"

namespace featsep {
namespace {

using ::featsep::testing::AddCycle;
using ::featsep::testing::AddPath;
using ::featsep::testing::GraphSchema;

TEST(LubyTest, StandardSequencePrefix) {
  const std::uint64_t expected[] = {1, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1,
                                    1, 2, 4, 8, 1, 1, 2, 1, 1, 2, 4};
  for (std::size_t i = 0; i < std::size(expected); ++i) {
    EXPECT_EQ(Luby(i + 1), expected[i]) << "Luby(" << i + 1 << ")";
  }
  EXPECT_EQ(Luby((std::uint64_t{1} << 20) - 1), std::uint64_t{1} << 19);
}

TEST(NogoodStoreTest, RecordAndForbidden) {
  NogoodStore store;
  // {(0, 3), (2, 5)} keyed by its final pair (2, 5).
  EXPECT_TRUE(store.Record({{0, 3}, {2, 5}}));
  EXPECT_EQ(store.size(), 1u);
  EXPECT_EQ(store.total_pairs(), 2u);

  std::vector<std::uint32_t> assignment(4, NogoodStore::kUnassigned);
  // Context (0 -> 3) not satisfied: not forbidden.
  EXPECT_FALSE(store.Forbidden(2, 5, assignment));
  assignment[0] = 3;
  EXPECT_TRUE(store.Forbidden(2, 5, assignment));
  // Keyed lookups are by the final pair only.
  EXPECT_FALSE(store.Forbidden(0, 3, assignment));
  EXPECT_FALSE(store.Forbidden(2, 4, assignment));
  assignment[0] = 7;
  EXPECT_FALSE(store.Forbidden(2, 5, assignment));
}

TEST(NogoodStoreTest, UnconditionalNogoodAlwaysFires) {
  NogoodStore store;
  EXPECT_TRUE(store.Record({{1, 9}}));  // Empty context.
  std::vector<std::uint32_t> assignment(2, NogoodStore::kUnassigned);
  EXPECT_TRUE(store.Forbidden(1, 9, assignment));
  EXPECT_FALSE(store.Forbidden(1, 8, assignment));
}

TEST(NogoodStoreTest, DropsEmptyLongAndOverCapacity) {
  NogoodStore store(/*capacity=*/3);
  EXPECT_FALSE(store.Record({}));
  std::vector<NogoodPair> long_nogood;
  for (std::uint32_t i = 0; i <= NogoodStore::kMaxPairs; ++i) {
    long_nogood.push_back({i, 0});
  }
  EXPECT_FALSE(store.Record(long_nogood));
  EXPECT_TRUE(store.Record({{0, 1}, {1, 2}}));   // 2 pairs: fits.
  EXPECT_FALSE(store.Record({{2, 3}, {3, 4}}));  // Would exceed 3 pairs.
  EXPECT_TRUE(store.Record({{2, 3}}));           // 1 pair: exactly fills.
  EXPECT_EQ(store.size(), 2u);
  EXPECT_EQ(store.total_pairs(), 3u);
}

/// A pseudo-random digraph over `nodes` values with edge probability ~1/3.
Database RandomGraph(std::size_t nodes, std::uint32_t seed) {
  Database db(GraphSchema());
  std::mt19937 rng(seed);
  std::vector<Value> values;
  for (std::size_t i = 0; i < nodes; ++i) {
    values.push_back(db.Intern("v" + std::to_string(i)));
  }
  RelationId e = db.schema().FindRelation("E");
  for (Value a : values) {
    for (Value b : values) {
      if (rng() % 3 == 0) db.AddFact(e, {a, b});
    }
  }
  return db;
}

/// Runs the sequential kernel and every parallel/restart configuration on
/// (from, to) and checks that all decisions agree and all witnesses verify.
void CheckAllConfigsAgree(const Database& from, const Database& to) {
  HomResult sequential = FindHomomorphism(from, to);
  ASSERT_NE(sequential.status, HomStatus::kExhausted);
  if (sequential.status == HomStatus::kFound) {
    EXPECT_TRUE(VerifyHomomorphism(from, to, sequential.mapping));
  }
  for (std::size_t threads : {2u, 8u}) {
    for (bool nogoods : {true, false}) {
      HomOptions options;
      options.num_threads = threads;
      options.use_nogoods = nogoods;
      options.restart_base = 16;  // Small: force restarts on real searches.
      options.rng_seed = 42;
      HomResult parallel = FindHomomorphism(from, to, {}, options);
      EXPECT_EQ(parallel.status, sequential.status)
          << threads << " threads, nogoods " << nogoods;
      if (parallel.status == HomStatus::kFound) {
        EXPECT_TRUE(VerifyHomomorphism(from, to, parallel.mapping));
      }
    }
  }
}

TEST(HomParallelTest, DecisionsMatchSequentialOnStructuredInstances) {
  // C_m -> C_n iff n | m: a mix of kFound and kNone instances.
  for (std::size_t m : {6u, 9u}) {
    for (std::size_t n : {3u, 4u}) {
      Database a(GraphSchema());
      AddCycle(a, "a", m);
      Database b(GraphSchema());
      AddCycle(b, "b", n);
      CheckAllConfigsAgree(a, b);
    }
  }
  Database path(GraphSchema());
  AddPath(path, "p", 6);
  Database shorter(GraphSchema());
  AddPath(shorter, "q", 3);
  CheckAllConfigsAgree(path, shorter);  // kNone.
  CheckAllConfigsAgree(shorter, path);  // kFound.
}

TEST(HomParallelTest, DecisionsMatchSequentialOnRandomInstances) {
  for (std::uint32_t seed = 0; seed < 6; ++seed) {
    Database from = RandomGraph(5, seed);
    Database to = RandomGraph(7, seed + 100);
    CheckAllConfigsAgree(from, to);
  }
}

TEST(HomParallelTest, SeedsRespectedUnderParallelSearch) {
  Database a(GraphSchema());
  auto p = AddPath(a, "p", 1);
  Database b(GraphSchema());
  auto q = AddPath(b, "q", 2);
  HomOptions options;
  options.num_threads = 4;
  HomResult ok = FindHomomorphism(a, b, {{p[0], q[0]}}, options);
  ASSERT_EQ(ok.status, HomStatus::kFound);
  EXPECT_EQ(ok.mapping[p[0]], q[0]);
  HomResult bad = FindHomomorphism(a, b, {{p[0], q[2]}}, options);
  EXPECT_EQ(bad.status, HomStatus::kNone);
}

TEST(HomParallelTest, SequentialRestartsAreDeterministic) {
  Database a(GraphSchema());
  AddCycle(a, "a", 9);
  Database b(GraphSchema());
  AddCycle(b, "b", 4);  // 4 does not divide 9: a real kNone search.
  HomOptions options;
  options.sequential_restarts = true;
  options.restart_base = 8;
  options.rng_seed = 7;
  HomResult first = FindHomomorphism(a, b, {}, options);
  HomResult second = FindHomomorphism(a, b, {}, options);
  EXPECT_EQ(first.status, HomStatus::kNone);
  EXPECT_EQ(second.status, first.status);
  // Bit-identical reproduction: same nodes, restarts, and recorded nogoods.
  EXPECT_EQ(second.nodes, first.nodes);
  EXPECT_EQ(second.restarts, first.restarts);
  EXPECT_EQ(second.nogoods_recorded, first.nogoods_recorded);
  EXPECT_GT(first.restarts, 0u) << "restart_base 8 should force restarts";

  // A different seed still decides identically.
  options.rng_seed = 8;
  HomResult reseeded = FindHomomorphism(a, b, {}, options);
  EXPECT_EQ(reseeded.status, HomStatus::kNone);
}

TEST(HomParallelTest, NogoodsReduceRestartReexploration) {
  Database a(GraphSchema());
  AddCycle(a, "a", 9);
  Database b(GraphSchema());
  AddCycle(b, "b", 4);
  HomOptions options;
  options.sequential_restarts = true;
  options.restart_base = 8;
  HomResult with = FindHomomorphism(a, b, {}, options);
  options.use_nogoods = false;
  HomResult without = FindHomomorphism(a, b, {}, options);
  EXPECT_EQ(with.status, HomStatus::kNone);
  EXPECT_EQ(without.status, HomStatus::kNone);
  EXPECT_GT(with.nogoods_recorded, 0u);
  EXPECT_EQ(without.nogoods_recorded, 0u);
  // Same schedule and value orders, so nogood pruning can only save nodes.
  EXPECT_LE(with.nodes, without.nodes);
}

TEST(HomParallelTest, CancelledBudgetStopsAllWorkers) {
  Database a(GraphSchema());
  AddCycle(a, "a", 9);
  Database b(GraphSchema());
  AddCycle(b, "b", 4);
  ExecutionBudget budget;
  budget.Cancel();
  HomOptions options;
  options.num_threads = 4;
  options.budget = &budget;
  HomResult result = FindHomomorphism(a, b, {}, options);
  EXPECT_EQ(result.status, HomStatus::kExhausted);
  EXPECT_EQ(result.outcome, BudgetOutcome::kCancelled);
  // No cross-call state: the same inputs decide fine on a fresh call.
  HomOptions clean;
  clean.num_threads = 4;
  EXPECT_EQ(FindHomomorphism(a, b, {}, clean).status, HomStatus::kNone);
}

TEST(HomParallelTest, StepLimitReportsExhaustedNotAnAnswer) {
  Database a(GraphSchema());
  AddCycle(a, "a", 9);
  Database b(GraphSchema());
  AddCycle(b, "b", 6);
  AddCycle(b, "c", 4);
  ExecutionBudget budget = ExecutionBudget::WithStepLimit(3);
  HomOptions options;
  options.num_threads = 4;
  options.budget = &budget;
  HomResult result = FindHomomorphism(a, b, {}, options);
  EXPECT_EQ(result.status, HomStatus::kExhausted);
  EXPECT_EQ(result.outcome, BudgetOutcome::kBudgetExhausted);
}

TEST(HomParallelTest, MaxNodesCapsTheGlobalNodeCount) {
  Database a(GraphSchema());
  AddCycle(a, "a", 9);
  Database b(GraphSchema());
  AddCycle(b, "b", 4);
  HomOptions options;
  options.num_threads = 4;
  options.max_nodes = 10;
  HomResult result = FindHomomorphism(a, b, {}, options);
  EXPECT_EQ(result.status, HomStatus::kExhausted);
  // Workers check the shared counter before expanding, so the overshoot is
  // bounded by one node per worker.
  EXPECT_LE(result.nodes, 10u + 4u);
}

TEST(HomParallelTest, ZeroThreadsResolvesToHardwareConcurrency) {
  Database a(GraphSchema());
  AddCycle(a, "a", 6);
  Database b(GraphSchema());
  AddCycle(b, "b", 3);
  HomOptions options;
  options.num_threads = 0;
  HomResult result = FindHomomorphism(a, b, {}, options);
  ASSERT_EQ(result.status, HomStatus::kFound);
  EXPECT_TRUE(VerifyHomomorphism(a, b, result.mapping));
}

TEST(HomParallelTest, TryHomEquivalentHonorsBaseOptions) {
  Database db(GraphSchema());
  auto a_nodes = AddCycle(db, "a", 6);
  auto b_nodes = AddCycle(db, "b", 3);
  HomOptions base;
  base.num_threads = 2;
  std::optional<bool> parallel = TryHomEquivalent(
      db, {a_nodes[0]}, db, {b_nodes[0]}, nullptr, base);
  std::optional<bool> sequential =
      TryHomEquivalent(db, {a_nodes[0]}, db, {b_nodes[0]}, nullptr);
  ASSERT_TRUE(parallel.has_value());
  ASSERT_TRUE(sequential.has_value());
  EXPECT_EQ(*parallel, *sequential);
}

TEST(HomParallelTest, VerifyHomomorphismRejectsBadMappings) {
  Database a(GraphSchema());
  auto p = AddPath(a, "p", 1);
  Database b(GraphSchema());
  auto q = AddPath(b, "q", 2);
  std::vector<Value> good(a.num_values(), kNoValue);
  good[p[0]] = q[0];
  good[p[1]] = q[1];
  EXPECT_TRUE(VerifyHomomorphism(a, b, good));
  std::vector<Value> broken = good;
  broken[p[1]] = q[0];  // E(q0, q0) is not a fact of b.
  EXPECT_FALSE(VerifyHomomorphism(a, b, broken));
  std::vector<Value> partial = good;
  partial[p[1]] = kNoValue;  // Undefined on a domain value.
  EXPECT_FALSE(VerifyHomomorphism(a, b, partial));
}

}  // namespace
}  // namespace featsep
