#include "core/separability.h"

#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "test_util.h"

namespace featsep {
namespace {

using ::featsep::testing::AddEntity;
using ::featsep::testing::GraphSchema;
using ::featsep::testing::UnarySchema;

/// Entities: e1 starts a 2-path (+), e2 starts a 1-edge (-), e3 isolated (-).
std::shared_ptr<TrainingDatabase> TwoPathDataset() {
  auto db = std::make_shared<Database>(GraphSchema());
  Value e1 = AddEntity(*db, "e1");
  Value e2 = AddEntity(*db, "e2");
  Value e3 = AddEntity(*db, "e3");
  testing::AddEdge(*db, "e1", "a");
  testing::AddEdge(*db, "a", "b");
  testing::AddEdge(*db, "e2", "c");
  auto training = std::make_shared<TrainingDatabase>(db);
  training->SetLabel(e1, kPositive);
  training->SetLabel(e2, kNegative);
  training->SetLabel(e3, kNegative);
  return training;
}

/// Example 6.2: D = {R(a), S(a), S(c)}, entities a(+), b(+), c(-).
std::shared_ptr<TrainingDatabase> Example62() {
  auto db = std::make_shared<Database>(UnarySchema());
  Value a = AddEntity(*db, "a");
  Value b = AddEntity(*db, "b");
  Value c = AddEntity(*db, "c");
  db->AddFact("R", {"a"});
  db->AddFact("S", {"a"});
  db->AddFact("S", {"c"});
  auto training = std::make_shared<TrainingDatabase>(db);
  training->SetLabel(a, kPositive);
  training->SetLabel(b, kPositive);
  training->SetLabel(c, kNegative);
  return training;
}

TEST(CqSepTest, StructurallyDistinctEntitiesAreSeparable) {
  EXPECT_TRUE(DecideCqSep(*TwoPathDataset()).separable);
  EXPECT_TRUE(DecideCqSep(*Example62()).separable);
}

TEST(CqSepTest, HomEquivalentConflictBlocksSeparability) {
  auto db = std::make_shared<Database>(GraphSchema());
  // e1 with one out-edge, e2 with two out-edges: hom-equivalent pointed
  // databases, so no CQ distinguishes them (Kimelfeld–Ré).
  Value e1 = AddEntity(*db, "e1");
  Value e2 = AddEntity(*db, "e2");
  testing::AddEdge(*db, "e1", "t");
  testing::AddEdge(*db, "e2", "u1");
  testing::AddEdge(*db, "e2", "u2");
  TrainingDatabase training(db);
  training.SetLabel(e1, kPositive);
  training.SetLabel(e2, kNegative);
  CqSepResult result = DecideCqSep(training);
  EXPECT_FALSE(result.separable);
  ASSERT_TRUE(result.conflict.has_value());
  EXPECT_EQ(result.conflict->first, e1);
  EXPECT_EQ(result.conflict->second, e2);
}

TEST(CqSepTest, ThreadCountDoesNotChangeTheAnswer) {
  // Many (positive, negative) pairs, with the hom-equivalent conflict
  // deliberately NOT first in enumeration order: the parallel sweep must
  // still report the same minimal-index conflict the serial loop finds.
  auto db = std::make_shared<Database>(GraphSchema());
  std::vector<Value> pos, neg;
  for (int i = 0; i < 3; ++i) {
    // Positives p0..p2 each start a 2-path.
    std::string name = "p" + std::to_string(i);
    Value p = AddEntity(*db, name);
    testing::AddEdge(*db, name, name + "m");
    testing::AddEdge(*db, name + "m", name + "t");
    pos.push_back(p);
  }
  for (int i = 0; i < 4; ++i) {
    // Negatives n0..n3 each start a single edge.
    std::string name = "n" + std::to_string(i);
    Value n = AddEntity(*db, name);
    testing::AddEdge(*db, name, name + "t");
    neg.push_back(n);
  }
  // Positive p3 carries the negative 1-edge shape, so the first conflict
  // in positive-major pair order is (p3, n0) — pair index 12 of 16.
  Value bad = AddEntity(*db, "p3");
  testing::AddEdge(*db, "p3", "p3t");
  pos.push_back(bad);
  TrainingDatabase training(db);
  for (Value p : pos) training.SetLabel(p, kPositive);
  for (Value n : neg) training.SetLabel(n, kNegative);

  CqSepResult serial = DecideCqSep(training, {.num_threads = 1});
  for (std::size_t threads : {2ul, 4ul, 8ul}) {
    CqSepResult parallel = DecideCqSep(training, {.num_threads = threads});
    EXPECT_EQ(parallel.separable, serial.separable);
    EXPECT_EQ(parallel.conflict, serial.conflict);
  }
}

TEST(CqSepTest, ParallelConflictIsTheFirstInPairOrder) {
  // Two conflicting pairs exist; the reported one must be the first in
  // positive-major order regardless of thread count.
  auto db = std::make_shared<Database>(GraphSchema());
  Value p1 = AddEntity(*db, "p1");
  Value p2 = AddEntity(*db, "p2");
  Value n1 = AddEntity(*db, "n1");
  Value n2 = AddEntity(*db, "n2");
  // All four entities carry the same 1-edge shape: every pair conflicts.
  testing::AddEdge(*db, "p1", "a");
  testing::AddEdge(*db, "p2", "b");
  testing::AddEdge(*db, "n1", "c");
  testing::AddEdge(*db, "n2", "d");
  TrainingDatabase training(db);
  training.SetLabel(p1, kPositive);
  training.SetLabel(p2, kPositive);
  training.SetLabel(n1, kNegative);
  training.SetLabel(n2, kNegative);

  for (std::size_t threads : {1ul, 4ul}) {
    CqSepResult result = DecideCqSep(training, {.num_threads = threads});
    EXPECT_FALSE(result.separable);
    ASSERT_TRUE(result.conflict.has_value());
    EXPECT_EQ(result.conflict->first, p1);
    EXPECT_EQ(result.conflict->second, n1);
  }
}

TEST(CqSepTest, DegenerateLabelingsAreSeparable) {
  // With one class empty there is no differently-labeled pair, so the
  // criterion of Theorem 3.2 holds vacuously — and the implementation must
  // not divide by, or iterate over, the empty side.
  auto db = std::make_shared<Database>(GraphSchema());
  Value e1 = AddEntity(*db, "e1");
  Value e2 = AddEntity(*db, "e2");
  testing::AddEdge(*db, "e1", "t");

  TrainingDatabase all_positive(db);
  all_positive.SetLabel(e1, kPositive);
  all_positive.SetLabel(e2, kPositive);
  TrainingDatabase all_negative(db);
  all_negative.SetLabel(e1, kNegative);
  all_negative.SetLabel(e2, kNegative);

  for (std::size_t threads : {1ul, 4ul}) {
    CqSepOptions options{.num_threads = threads};
    CqSepResult positives_only = DecideCqSep(all_positive, options);
    EXPECT_TRUE(positives_only.separable);
    EXPECT_FALSE(positives_only.conflict.has_value());
    CqSepResult negatives_only = DecideCqSep(all_negative, options);
    EXPECT_TRUE(negatives_only.separable);
    EXPECT_FALSE(negatives_only.conflict.has_value());
  }
}

TEST(CqSepTest, EntitylessTrainingDatabaseIsSeparable) {
  // Both example sets empty: vacuously separable, no conflict.
  auto db = std::make_shared<Database>(GraphSchema());
  testing::AddEdge(*db, "a", "b");  // Facts but no entities.
  TrainingDatabase training(db);
  CqSepResult result = DecideCqSep(training);
  EXPECT_TRUE(result.separable);
  EXPECT_FALSE(result.conflict.has_value());
}

TEST(CqmSepTest, Example62SeparableWithOneAtomFeatures) {
  CqmSepResult result = DecideCqmSep(*Example62(), 1);
  ASSERT_TRUE(result.separable);
  EXPECT_EQ(result.model->TrainingErrors(*Example62()), 0u);
  EXPECT_GE(result.features_enumerated, 5u);
}

TEST(CqmSepTest, TwoPathNeedsTwoAtoms) {
  auto training = TwoPathDataset();
  // With one atom, e1 and e2 are indistinguishable (both have an
  // out-edge and nothing else a single atom can see).
  EXPECT_FALSE(DecideCqmSep(*training, 1).separable);
  CqmSepResult with_two = DecideCqmSep(*training, 2);
  ASSERT_TRUE(with_two.separable);
  EXPECT_EQ(with_two.model->TrainingErrors(*training), 0u);
}

TEST(CqmSepTest, GeneratedModelClassifiesUnseenDatabase) {
  auto training = TwoPathDataset();
  CqmSepResult result = DecideCqmSep(*training, 2);
  ASSERT_TRUE(result.separable);

  // Evaluation database with fresh entities of both shapes.
  Database eval(GraphSchema());
  Value f1 = AddEntity(eval, "f1");
  Value f2 = AddEntity(eval, "f2");
  testing::AddEdge(eval, "f1", "p");
  testing::AddEdge(eval, "p", "q");
  testing::AddEdge(eval, "f2", "r");
  Labeling predicted = result.model->Apply(eval);
  EXPECT_EQ(predicted.Get(f1), kPositive);
  EXPECT_EQ(predicted.Get(f2), kNegative);
}

TEST(CqmSepTest, InseparableBecauseOfContradictoryLabels) {
  auto db = std::make_shared<Database>(UnarySchema());
  Value a = AddEntity(*db, "a");
  Value b = AddEntity(*db, "b");
  // a and b are both isolated entities: no CQ distinguishes them.
  TrainingDatabase training(db);
  training.SetLabel(a, kPositive);
  training.SetLabel(b, kNegative);
  EXPECT_FALSE(DecideCqmSep(training, 3).separable);
  EXPECT_FALSE(DecideCqSep(training).separable);
}

TEST(CqmSepTest, MonotoneInM) {
  // Separability at m implies separability at m+1 (CQ[m] ⊆ CQ[m+1]).
  auto training = TwoPathDataset();
  bool m1 = DecideCqmSep(*training, 1).separable;
  bool m2 = DecideCqmSep(*training, 2).separable;
  bool m3 = DecideCqmSep(*training, 3).separable;
  EXPECT_TRUE(!m1 || m2);
  EXPECT_TRUE(!m2 || m3);
  EXPECT_TRUE(m2);
}

TEST(CqmSepTest, VariableOccurrenceRestriction) {
  // CQ[m,p]-SEP (Prop 4.3): the 2-path feature E(x,y),E(y,z) needs y to
  // occur twice; with p = 1 it is unavailable.
  auto training = TwoPathDataset();
  EXPECT_FALSE(DecideCqmSep(*training, 2, 1).separable);
  EXPECT_TRUE(DecideCqmSep(*training, 2, 2).separable);
}

}  // namespace
}  // namespace featsep
