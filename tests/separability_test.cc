#include "core/separability.h"

#include <memory>

#include <gtest/gtest.h>

#include "test_util.h"

namespace featsep {
namespace {

using ::featsep::testing::AddEntity;
using ::featsep::testing::GraphSchema;
using ::featsep::testing::UnarySchema;

/// Entities: e1 starts a 2-path (+), e2 starts a 1-edge (-), e3 isolated (-).
std::shared_ptr<TrainingDatabase> TwoPathDataset() {
  auto db = std::make_shared<Database>(GraphSchema());
  Value e1 = AddEntity(*db, "e1");
  Value e2 = AddEntity(*db, "e2");
  Value e3 = AddEntity(*db, "e3");
  testing::AddEdge(*db, "e1", "a");
  testing::AddEdge(*db, "a", "b");
  testing::AddEdge(*db, "e2", "c");
  auto training = std::make_shared<TrainingDatabase>(db);
  training->SetLabel(e1, kPositive);
  training->SetLabel(e2, kNegative);
  training->SetLabel(e3, kNegative);
  return training;
}

/// Example 6.2: D = {R(a), S(a), S(c)}, entities a(+), b(+), c(-).
std::shared_ptr<TrainingDatabase> Example62() {
  auto db = std::make_shared<Database>(UnarySchema());
  Value a = AddEntity(*db, "a");
  Value b = AddEntity(*db, "b");
  Value c = AddEntity(*db, "c");
  db->AddFact("R", {"a"});
  db->AddFact("S", {"a"});
  db->AddFact("S", {"c"});
  auto training = std::make_shared<TrainingDatabase>(db);
  training->SetLabel(a, kPositive);
  training->SetLabel(b, kPositive);
  training->SetLabel(c, kNegative);
  return training;
}

TEST(CqSepTest, StructurallyDistinctEntitiesAreSeparable) {
  EXPECT_TRUE(DecideCqSep(*TwoPathDataset()).separable);
  EXPECT_TRUE(DecideCqSep(*Example62()).separable);
}

TEST(CqSepTest, HomEquivalentConflictBlocksSeparability) {
  auto db = std::make_shared<Database>(GraphSchema());
  // e1 with one out-edge, e2 with two out-edges: hom-equivalent pointed
  // databases, so no CQ distinguishes them (Kimelfeld–Ré).
  Value e1 = AddEntity(*db, "e1");
  Value e2 = AddEntity(*db, "e2");
  testing::AddEdge(*db, "e1", "t");
  testing::AddEdge(*db, "e2", "u1");
  testing::AddEdge(*db, "e2", "u2");
  TrainingDatabase training(db);
  training.SetLabel(e1, kPositive);
  training.SetLabel(e2, kNegative);
  CqSepResult result = DecideCqSep(training);
  EXPECT_FALSE(result.separable);
  ASSERT_TRUE(result.conflict.has_value());
  EXPECT_EQ(result.conflict->first, e1);
  EXPECT_EQ(result.conflict->second, e2);
}

TEST(CqmSepTest, Example62SeparableWithOneAtomFeatures) {
  CqmSepResult result = DecideCqmSep(*Example62(), 1);
  ASSERT_TRUE(result.separable);
  EXPECT_EQ(result.model->TrainingErrors(*Example62()), 0u);
  EXPECT_GE(result.features_enumerated, 5u);
}

TEST(CqmSepTest, TwoPathNeedsTwoAtoms) {
  auto training = TwoPathDataset();
  // With one atom, e1 and e2 are indistinguishable (both have an
  // out-edge and nothing else a single atom can see).
  EXPECT_FALSE(DecideCqmSep(*training, 1).separable);
  CqmSepResult with_two = DecideCqmSep(*training, 2);
  ASSERT_TRUE(with_two.separable);
  EXPECT_EQ(with_two.model->TrainingErrors(*training), 0u);
}

TEST(CqmSepTest, GeneratedModelClassifiesUnseenDatabase) {
  auto training = TwoPathDataset();
  CqmSepResult result = DecideCqmSep(*training, 2);
  ASSERT_TRUE(result.separable);

  // Evaluation database with fresh entities of both shapes.
  Database eval(GraphSchema());
  Value f1 = AddEntity(eval, "f1");
  Value f2 = AddEntity(eval, "f2");
  testing::AddEdge(eval, "f1", "p");
  testing::AddEdge(eval, "p", "q");
  testing::AddEdge(eval, "f2", "r");
  Labeling predicted = result.model->Apply(eval);
  EXPECT_EQ(predicted.Get(f1), kPositive);
  EXPECT_EQ(predicted.Get(f2), kNegative);
}

TEST(CqmSepTest, InseparableBecauseOfContradictoryLabels) {
  auto db = std::make_shared<Database>(UnarySchema());
  Value a = AddEntity(*db, "a");
  Value b = AddEntity(*db, "b");
  // a and b are both isolated entities: no CQ distinguishes them.
  TrainingDatabase training(db);
  training.SetLabel(a, kPositive);
  training.SetLabel(b, kNegative);
  EXPECT_FALSE(DecideCqmSep(training, 3).separable);
  EXPECT_FALSE(DecideCqSep(training).separable);
}

TEST(CqmSepTest, MonotoneInM) {
  // Separability at m implies separability at m+1 (CQ[m] ⊆ CQ[m+1]).
  auto training = TwoPathDataset();
  bool m1 = DecideCqmSep(*training, 1).separable;
  bool m2 = DecideCqmSep(*training, 2).separable;
  bool m3 = DecideCqmSep(*training, 3).separable;
  EXPECT_TRUE(!m1 || m2);
  EXPECT_TRUE(!m2 || m3);
  EXPECT_TRUE(m2);
}

TEST(CqmSepTest, VariableOccurrenceRestriction) {
  // CQ[m,p]-SEP (Prop 4.3): the 2-path feature E(x,y),E(y,z) needs y to
  // occur twice; with p = 1 it is unavailable.
  auto training = TwoPathDataset();
  EXPECT_FALSE(DecideCqmSep(*training, 2, 1).separable);
  EXPECT_TRUE(DecideCqmSep(*training, 2, 2).separable);
}

}  // namespace
}  // namespace featsep
