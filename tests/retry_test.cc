#include "util/retry.h"

#include <chrono>

#include <gtest/gtest.h>

#include "util/budget.h"

namespace featsep {
namespace {

TEST(RetryTest, FirstTrySuccessMakesOneAttempt) {
  RetryPolicy policy;
  policy.max_attempts = 5;
  int calls = 0;
  RetryOutcome outcome = RetryCall(policy, nullptr, [&]() {
    ++calls;
    return true;
  });
  EXPECT_TRUE(outcome.ok);
  EXPECT_EQ(outcome.attempts, 1u);
  EXPECT_EQ(outcome.retries(), 0u);
  EXPECT_FALSE(outcome.gave_up());
  EXPECT_EQ(calls, 1);
}

TEST(RetryTest, TransientFaultRetriesThenSucceeds) {
  RetryPolicy policy;
  policy.max_attempts = 4;
  int calls = 0;
  RetryOutcome outcome = RetryCall(policy, nullptr, [&]() {
    return ++calls >= 3;  // Fails twice, then succeeds.
  });
  EXPECT_TRUE(outcome.ok);
  EXPECT_EQ(outcome.attempts, 3u);
  EXPECT_EQ(outcome.retries(), 2u);
  EXPECT_EQ(calls, 3);
}

TEST(RetryTest, ExhaustionReportsGaveUpAfterExactlyMaxAttempts) {
  RetryPolicy policy;
  policy.max_attempts = 3;
  int calls = 0;
  RetryOutcome outcome = RetryCall(policy, nullptr, [&]() {
    ++calls;
    return false;
  });
  EXPECT_FALSE(outcome.ok);
  EXPECT_TRUE(outcome.gave_up());
  EXPECT_EQ(outcome.attempts, 3u);
  EXPECT_EQ(outcome.retries(), 2u);
  EXPECT_EQ(calls, 3);
}

TEST(RetryTest, ZeroAndNegativeMaxAttemptsMeanTryOnce) {
  for (int max_attempts : {0, -2}) {
    RetryPolicy policy;
    policy.max_attempts = max_attempts;
    int calls = 0;
    RetryOutcome outcome = RetryCall(policy, nullptr, [&]() {
      ++calls;
      return false;
    });
    EXPECT_FALSE(outcome.ok);
    EXPECT_EQ(outcome.attempts, 1u);
    EXPECT_EQ(calls, 1);
  }
}

TEST(RetryTest, ExhaustedBudgetStopsBeforeFirstAttempt) {
  // A retrying store must never hold a request past its deadline: with the
  // budget already spent, the op body must not run at all.
  RetryPolicy policy;
  policy.max_attempts = 5;
  ExecutionBudget budget;
  budget.Cancel();
  int calls = 0;
  RetryOutcome outcome = RetryCall(policy, &budget, [&]() {
    ++calls;
    return true;
  });
  EXPECT_FALSE(outcome.ok);
  EXPECT_EQ(outcome.attempts, 0u);
  EXPECT_EQ(outcome.retries(), 0u);
  EXPECT_EQ(calls, 0);
}

TEST(RetryTest, CancelledMidLoopStopsRetrying) {
  RetryPolicy policy;
  policy.max_attempts = 10;
  policy.initial_backoff = std::chrono::microseconds(1);
  ExecutionBudget budget;
  int calls = 0;
  RetryOutcome outcome = RetryCall(policy, &budget, [&]() {
    if (++calls == 2) budget.Cancel();
    return false;
  });
  EXPECT_FALSE(outcome.ok);
  // The cancellation lands before the post-second-attempt sleep or at the
  // latest before the third attempt.
  EXPECT_EQ(outcome.attempts, 2u);
  EXPECT_EQ(calls, 2);
}

TEST(RetryTest, JitterKeepsBackoffWithinNominal) {
  // With jitter enabled the total sleep is bounded by the nominal backoff
  // schedule; we can only observe time, so check the loop still terminates
  // promptly and succeeds.
  RetryPolicy policy;
  policy.max_attempts = 4;
  policy.initial_backoff = std::chrono::microseconds(50);
  policy.max_backoff = std::chrono::microseconds(100);
  policy.jitter_seed = 0x9e3779b97f4a7c15ULL;
  const auto start = std::chrono::steady_clock::now();
  int calls = 0;
  RetryOutcome outcome = RetryCall(policy, nullptr, [&]() {
    ++calls;
    return false;
  });
  const auto elapsed = std::chrono::steady_clock::now() - start;
  EXPECT_FALSE(outcome.ok);
  EXPECT_EQ(outcome.attempts, 4u);
  // Nominal schedule: 50 + 100 + 100 = 250us of sleeping; allow generous
  // scheduler slack but catch an unclamped exponential blow-up.
  EXPECT_LT(elapsed, std::chrono::milliseconds(500));
}

TEST(RetryTest, DefaultPolicyIsTryOnce) {
  RetryPolicy policy;
  int calls = 0;
  RetryOutcome outcome = RetryCall(policy, nullptr, [&]() {
    ++calls;
    return false;
  });
  EXPECT_EQ(outcome.attempts, 1u);
  EXPECT_EQ(calls, 1);
}

}  // namespace
}  // namespace featsep
