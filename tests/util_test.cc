#include <gtest/gtest.h>

#include "util/check.h"
#include "util/hash.h"
#include "util/result.h"
#include "util/strings.h"

namespace featsep {
namespace {

TEST(CheckTest, PassingChecksAreSilent) {
  FEATSEP_CHECK(true);
  FEATSEP_CHECK_EQ(1, 1);
  FEATSEP_CHECK_LT(1, 2);
  FEATSEP_CHECK_GE(2, 2);
}

TEST(CheckDeathTest, FailingCheckAborts) {
  EXPECT_DEATH(FEATSEP_CHECK(false) << "context " << 42,
               "CHECK failed.*context 42");
  EXPECT_DEATH(FEATSEP_CHECK_EQ(1, 2), "CHECK failed");
}

TEST(ResultTest, ValueAndError) {
  Result<int> ok = 42;
  EXPECT_TRUE(ok.ok());
  EXPECT_EQ(ok.value(), 42);

  Result<int> bad = Error("boom");
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(bad.error().message(), "boom");
}

TEST(ResultDeathTest, WrongAccessorAborts) {
  Result<int> bad = Error("boom");
  EXPECT_DEATH(bad.value(), "boom");
  Result<int> ok = 1;
  EXPECT_DEATH(ok.error(), "error\\(\\) on ok result");
}

TEST(HashTest, CombineIsOrderSensitive) {
  std::size_t a = 1;
  std::size_t b = 1;
  HashCombine(a, 2);
  HashCombine(a, 3);
  HashCombine(b, 3);
  HashCombine(b, 2);
  EXPECT_NE(a, b);
}

TEST(HashTest, VectorHashConsistent) {
  VectorHash<int> hasher;
  EXPECT_EQ(hasher({1, 2, 3}), hasher({1, 2, 3}));
  EXPECT_NE(hasher({1, 2, 3}), hasher({3, 2, 1}));
  EXPECT_NE(hasher({}), hasher({0}));
}

TEST(StringsTest, Split) {
  EXPECT_EQ(Split("a,b,c", ','),
            (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(Split("", ','), (std::vector<std::string>{""}));
  EXPECT_EQ(Split("a,,b", ','), (std::vector<std::string>{"a", "", "b"}));
  EXPECT_EQ(Split(",", ','), (std::vector<std::string>{"", ""}));
}

TEST(StringsTest, StripWhitespace) {
  EXPECT_EQ(StripWhitespace("  hi \t\n"), "hi");
  EXPECT_EQ(StripWhitespace(""), "");
  EXPECT_EQ(StripWhitespace(" \t "), "");
  EXPECT_EQ(StripWhitespace("x"), "x");
}

TEST(StringsTest, Join) {
  EXPECT_EQ(Join({"a", "b"}, ", "), "a, b");
  EXPECT_EQ(Join({}, ","), "");
  EXPECT_EQ(Join({"solo"}, ","), "solo");
}

TEST(StringsTest, StartsWith) {
  EXPECT_TRUE(StartsWith("relation R 2", "relation "));
  EXPECT_FALSE(StartsWith("rel", "relation"));
  EXPECT_TRUE(StartsWith("x", ""));
}

}  // namespace
}  // namespace featsep
