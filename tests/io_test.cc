#include <gtest/gtest.h>

#include "cq/containment.h"
#include "io/cq_parser.h"
#include "io/reader.h"
#include "io/writer.h"
#include "test_util.h"

namespace featsep {
namespace {

constexpr const char* kSample = R"(# a sample training database
relation Eta 1 entity
relation E 2

Eta(e1)
Eta(e2)
E(e1, a)
E(a, b)
E(e2, c)
label e1 +
label e2 -
)";

TEST(ReaderTest, ParsesTrainingDatabase) {
  auto result = ReadTrainingDatabase(kSample);
  ASSERT_TRUE(result.ok()) << result.error().message();
  const TrainingDatabase& training = *result.value();
  EXPECT_EQ(training.Entities().size(), 2u);
  EXPECT_EQ(training.database().size(), 5u);
  EXPECT_EQ(training.label(training.database().FindValue("e1")), kPositive);
  EXPECT_EQ(training.label(training.database().FindValue("e2")), kNegative);
  EXPECT_TRUE(training.IsFullyLabeled());
}

TEST(ReaderTest, ParsesPlainDatabase) {
  auto result = ReadDatabase(
      "relation R 2\n"
      "R(a, b)\n"
      "R(b, c)\n");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value()->size(), 2u);
  EXPECT_FALSE(result.value()->schema().has_entity_relation());
}

TEST(ReaderTest, ErrorMessagesCarryLineNumbers) {
  auto result = ReadDatabase(
      "relation R 2\n"
      "R(a)\n");
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.error().message().find("line 2"), std::string::npos);
}

TEST(ReaderTest, RejectsUnknownRelation) {
  EXPECT_FALSE(ReadDatabase("S(a)\n").ok());
}

TEST(ReaderTest, RejectsBadLabels) {
  EXPECT_FALSE(ReadTrainingDatabase("relation Eta 1 entity\n"
                                    "Eta(e)\n"
                                    "label e maybe\n")
                   .ok());
  EXPECT_FALSE(ReadTrainingDatabase("relation Eta 1 entity\n"
                                    "label ghost +\n")
                   .ok());
}

TEST(ReaderTest, RejectsSecondEntityRelation) {
  EXPECT_FALSE(ReadTrainingDatabase("relation Eta 1 entity\n"
                                    "relation Eta2 1 entity\n")
                   .ok());
}

TEST(ReaderTest, RejectsLabelsInPlainDatabase) {
  EXPECT_FALSE(ReadDatabase("relation Eta 1 entity\n"
                            "Eta(e)\n"
                            "label e +\n")
                   .ok());
}

TEST(WriterTest, RoundTripsTrainingDatabase) {
  auto original = ReadTrainingDatabase(kSample);
  ASSERT_TRUE(original.ok());
  std::string text = WriteTrainingDatabase(*original.value());
  auto reparsed = ReadTrainingDatabase(text);
  ASSERT_TRUE(reparsed.ok()) << reparsed.error().message();
  EXPECT_EQ(reparsed.value()->database().size(),
            original.value()->database().size());
  EXPECT_EQ(reparsed.value()->Entities().size(), 2u);
  EXPECT_EQ(
      reparsed.value()->label(reparsed.value()->database().FindValue("e1")),
      kPositive);
}

TEST(CqParserTest, ParsesFeatureQuery) {
  auto schema = testing::GraphSchema();
  auto parsed = ParseCq(schema, "q(x) :- Eta(x), E(x, y), E(y, z)");
  ASSERT_TRUE(parsed.ok()) << parsed.error().message();
  EXPECT_TRUE(parsed.value().IsUnary());
  EXPECT_EQ(parsed.value().NumAtoms(false), 2u);
  EXPECT_EQ(parsed.value().ToString(), "q(x) :- Eta(x), E(x, y), E(y, z)");
}

TEST(CqParserTest, RoundTripsToString) {
  auto schema = testing::GraphSchema();
  ConjunctiveQuery q = ConjunctiveQuery::MakeFeatureQuery(schema);
  Variable x = q.free_variable();
  Variable y = q.NewVariable("y");
  q.AddAtom(schema->FindRelation("E"), {y, x});
  auto parsed = ParseCq(schema, q.ToString());
  ASSERT_TRUE(parsed.ok());
  EXPECT_TRUE(AreEquivalent(q, parsed.value()));
}

TEST(CqParserTest, TrueBody) {
  auto schema = testing::GraphSchema();
  auto parsed = ParseCq(schema, "q(x) :- true");
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value().NumAtoms(true), 0u);
}

TEST(CqParserTest, Errors) {
  auto schema = testing::GraphSchema();
  EXPECT_FALSE(ParseCq(schema, "no separator").ok());
  EXPECT_FALSE(ParseCq(schema, "q(x) :- Unknown(x)").ok());
  EXPECT_FALSE(ParseCq(schema, "q(x) :- E(x)").ok());
  EXPECT_FALSE(ParseCq(schema, "q(x, x) :- Eta(x)").ok());
}

}  // namespace
}  // namespace featsep
