#include "cq/enumeration.h"

#include <set>

#include <gtest/gtest.h>

#include "cq/containment.h"
#include "cq/evaluation.h"
#include "test_util.h"
#include "testing/random_instance.h"
#include "testing/reference_hom.h"
#include "workload/generators.h"

namespace featsep {
namespace {

using ::featsep::testing::GraphSchema;
using ::featsep::testing::UnarySchema;

TEST(EnumerationTest, UnarySchemaOneAtom) {
  // Over {Eta, R, S} (all unary): the bare query plus R(x), R(y), S(x),
  // S(y) and Eta-atom variants Eta(x) duplicate is excluded... Eta(y) is
  // also a legal extra atom.
  auto queries = EnumerateFeatureQueries(UnarySchema(), 1);
  // Atoms available: Eta(x) dup (skipped), Eta(y), R(x), R(y), S(x), S(y)
  // -> 5 single-atom queries + 1 bare query.
  EXPECT_EQ(queries.size(), 6u);
}

TEST(EnumerationTest, GraphSchemaOneAtom) {
  auto queries = EnumerateFeatureQueries(GraphSchema(), 1);
  // Extra atoms: Eta(y); E over (x,x),(x,y),(y,x),(y,y),(y,z) -> 6 + bare.
  EXPECT_EQ(queries.size(), 7u);
}

TEST(EnumerationTest, MonotoneInM) {
  auto m1 = EnumerateFeatureQueries(GraphSchema(), 1);
  auto m2 = EnumerateFeatureQueries(GraphSchema(), 2);
  EXPECT_LT(m1.size(), m2.size());
}

TEST(EnumerationTest, EveryQueryHasEntityAtomAndAtomBudget) {
  auto queries = EnumerateFeatureQueries(GraphSchema(), 2);
  for (const ConjunctiveQuery& q : queries) {
    EXPECT_TRUE(q.IsUnary());
    EXPECT_LE(q.NumAtoms(false), 2u);
    // Eta(x) present: NumAtoms differs by exactly 1 when not counting it.
    EXPECT_EQ(q.NumAtoms(true), q.NumAtoms(false) + 1);
  }
}

TEST(EnumerationTest, VariableOccurrenceBound) {
  EnumerationOptions options;
  options.max_variable_occurrences = 1;
  auto restricted = EnumerateFeatureQueries(GraphSchema(), 2, options);
  for (const ConjunctiveQuery& q : restricted) {
    // Occurrences are counted over the non-Eta atoms.
    std::vector<std::size_t> counts(q.num_variables(), 0);
    RelationId eta = q.schema().entity_relation();
    for (const CqAtom& atom : q.atoms()) {
      if (atom.relation == eta && atom.args.size() == 1 &&
          atom.args[0] == q.free_variable()) {
        continue;
      }
      for (Variable v : atom.args) ++counts[v];
    }
    for (std::size_t c : counts) EXPECT_LE(c, 1u);
  }
  auto unrestricted = EnumerateFeatureQueries(GraphSchema(), 2);
  EXPECT_LT(restricted.size(), unrestricted.size());
}

TEST(EnumerationTest, NoSyntacticDuplicates) {
  auto queries = EnumerateFeatureQueries(GraphSchema(), 2);
  std::set<std::string> rendered;
  for (const ConjunctiveQuery& q : queries) {
    EXPECT_TRUE(rendered.insert(q.ToString()).second) << q.ToString();
  }
}

TEST(EnumerationTest, CoversKeyQueriesUpToEquivalence) {
  // The 2-path feature must appear (up to equivalence) in the m=2 output.
  auto schema = GraphSchema();
  ConjunctiveQuery two_path = ConjunctiveQuery::MakeFeatureQuery(schema);
  Variable x = two_path.free_variable();
  Variable y = two_path.NewVariable("y");
  Variable z = two_path.NewVariable("z");
  two_path.AddAtom(schema->FindRelation("E"), {x, y});
  two_path.AddAtom(schema->FindRelation("E"), {y, z});

  bool found = false;
  for (const ConjunctiveQuery& q :
       EnumerateFeatureQueries(schema, 2)) {
    if (q.NumAtoms(false) == 2 && AreEquivalent(q, two_path)) {
      found = true;
      break;
    }
  }
  EXPECT_TRUE(found);
}

TEST(EnumerationTest, ConnectedFilter) {
  EnumerationOptions options;
  options.include_disconnected = false;
  auto connected = EnumerateFeatureQueries(GraphSchema(), 2, options);
  auto all = EnumerateFeatureQueries(GraphSchema(), 2);
  EXPECT_LT(connected.size(), all.size());
  // E(y,z) alone (disconnected from x) must be filtered out.
  for (const ConjunctiveQuery& q : connected) {
    if (q.NumAtoms(false) == 0) continue;
    // Every variable reachable from x: verified by the filter itself;
    // spot-check that no query consists solely of a free-x Eta atom plus
    // an edge not touching x.
    bool touches_x = false;
    for (const CqAtom& atom : q.atoms()) {
      if (atom.relation == q.schema().FindRelation("E")) {
        for (Variable v : atom.args) {
          touches_x = touches_x || v == q.free_variable();
        }
      }
    }
    if (q.NumAtoms(false) == 1) {
      EXPECT_TRUE(touches_x) << q.ToString();
    }
  }
}

TEST(EnumerationTest, CountMatchesEnumerate) {
  EXPECT_EQ(CountFeatureQueries(GraphSchema(), 2),
            EnumerateFeatureQueries(GraphSchema(), 2).size());
}

TEST(EnumerationTest, EnumeratedQueriesEvaluateLikeReferenceOracle) {
  // Every enumerated CQ[1] feature query must compute the same answer set
  // as the naive oracle on random databases — this exercises the generated
  // queries end to end (free-variable wiring, Eta atom, variable reuse)
  // rather than just their syntax.
  std::vector<ConjunctiveQuery> queries =
      EnumerateFeatureQueries(GraphSchema(), 1);
  ASSERT_FALSE(queries.empty());
  std::size_t compared = 0;
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    WorkloadRng rng(seed);
    testing::RandomDatabaseParams dp;
    dp.num_values = rng.Range(3, 5);
    dp.num_facts = rng.Range(4, 10);
    Database db = testing::RandomDatabase(GraphSchema(), dp, rng);
    for (const ConjunctiveQuery& q : queries) {
      EXPECT_EQ(CqEvaluator(q).Evaluate(db),
                testing::RefEvaluateUnaryCq(q, db))
          << "seed " << seed << ": " << q.ToString();
      ++compared;
    }
  }
  EXPECT_GT(compared, 20u);
}

}  // namespace
}  // namespace featsep
