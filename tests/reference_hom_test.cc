#include "testing/reference_hom.h"

#include <memory>
#include <optional>
#include <vector>

#include <gtest/gtest.h>

#include "cq/containment.h"
#include "cq/evaluation.h"
#include "cq/homomorphism.h"
#include "relational/database.h"
#include "relational/schema.h"
#include "test_util.h"

namespace featsep {
namespace {

using ::featsep::testing::AddCycle;
using ::featsep::testing::AddEntity;
using ::featsep::testing::AddPath;
using ::featsep::testing::GraphSchema;
using ::featsep::testing::RefEvaluateUnaryCq;
using ::featsep::testing::RefFindHomomorphism;
using ::featsep::testing::RefHomEquivalent;
using ::featsep::testing::RefHomomorphismExists;
using ::featsep::testing::RefIsContainedIn;
using ::featsep::testing::RefIsHomomorphism;

// Known-answer tests for the naive oracle itself. The oracle guards the
// optimized kernel, so its own behavior is pinned on instances where the
// right answer is provable by hand.

TEST(ReferenceHomTest, EmptySourceMapsAnywhere) {
  Database a(GraphSchema());
  Database b(GraphSchema());
  EXPECT_TRUE(RefHomomorphismExists(a, b));
  b.AddFact("E", {"x", "y"});
  EXPECT_TRUE(RefHomomorphismExists(a, b));
}

TEST(ReferenceHomTest, PathIntoLongerPath) {
  Database a(GraphSchema());
  AddPath(a, "p", 2);
  Database b(GraphSchema());
  AddPath(b, "q", 5);
  EXPECT_TRUE(RefHomomorphismExists(a, b));
  EXPECT_FALSE(RefHomomorphismExists(b, a));
}

TEST(ReferenceHomTest, DirectedCyclesMapIffLengthDivides) {
  // C_n -> C_m for directed cycles iff m divides n.
  Database c6(GraphSchema());
  AddCycle(c6, "a", 6);
  Database c3(GraphSchema());
  AddCycle(c3, "b", 3);
  Database c4(GraphSchema());
  AddCycle(c4, "c", 4);
  EXPECT_TRUE(RefHomomorphismExists(c6, c3));   // 3 | 6.
  EXPECT_FALSE(RefHomomorphismExists(c6, c4));  // 4 does not divide 6.
  EXPECT_FALSE(RefHomomorphismExists(c3, c6));  // 6 does not divide 3.
}

TEST(ReferenceHomTest, WitnessIsValid) {
  Database a(GraphSchema());
  AddPath(a, "p", 3);
  Database b(GraphSchema());
  AddCycle(b, "q", 2);
  std::optional<std::vector<Value>> mapping = RefFindHomomorphism(a, b);
  ASSERT_TRUE(mapping.has_value());
  EXPECT_TRUE(RefIsHomomorphism(a, b, *mapping));
}

TEST(ReferenceHomTest, IsHomomorphismRejectsBrokenMapping) {
  Database a(GraphSchema());
  std::vector<Value> path = AddPath(a, "p", 1);  // E(p0, p1).
  Database b(GraphSchema());
  Value x = b.Intern("x");
  Value y = b.Intern("y");
  b.AddFact(b.schema().FindRelation("E"), {x, y});
  std::vector<Value> good(a.num_values(), kNoValue);
  good[path[0]] = x;
  good[path[1]] = y;
  EXPECT_TRUE(RefIsHomomorphism(a, b, good));
  std::vector<Value> bad = good;
  bad[path[1]] = x;  // E(x, x) is not in b.
  EXPECT_FALSE(RefIsHomomorphism(a, b, bad));
}

TEST(ReferenceHomTest, SeedConstrainsTheSearch) {
  Database a(GraphSchema());
  std::vector<Value> p = AddPath(a, "p", 1);
  Database b(GraphSchema());
  std::vector<Value> q = AddPath(b, "q", 1);
  EXPECT_TRUE(RefHomomorphismExists(a, b, {{p[0], q[0]}}));
  // Forcing p0 onto the sink q1 leaves no image for the edge.
  EXPECT_FALSE(RefHomomorphismExists(a, b, {{p[0], q[1]}}));
}

TEST(ReferenceHomTest, ContradictorySeedFails) {
  Database a(GraphSchema());
  Value v = a.Intern("v");
  a.AddFact(a.schema().FindRelation("E"), {v, v});
  Database b(GraphSchema());
  Value x = b.Intern("x");
  Value y = b.Intern("y");
  b.AddFact(b.schema().FindRelation("E"), {x, x});
  b.AddFact(b.schema().FindRelation("E"), {y, y});
  EXPECT_TRUE(RefHomomorphismExists(a, b, {{v, x}}));
  EXPECT_FALSE(RefHomomorphismExists(a, b, {{v, x}, {v, y}}));
}

TEST(ReferenceHomTest, FreeSeedSourcesAreCopiedThrough) {
  Database a(GraphSchema());
  Value v = a.Intern("v");
  a.AddFact(a.schema().FindRelation("E"), {v, v});
  Database b(GraphSchema());
  Value x = b.Intern("x");
  b.AddFact(b.schema().FindRelation("E"), {x, x});
  // Interned but factless: outside dom(a), so the pair is unconstrained by
  // the search and simply copied into the mapping.
  Value isolated = a.Intern("isolated");
  std::optional<std::vector<Value>> mapping =
      RefFindHomomorphism(a, b, {{isolated, x}});
  ASSERT_TRUE(mapping.has_value());
  ASSERT_LT(isolated, mapping->size());
  EXPECT_EQ((*mapping)[isolated], x);
  EXPECT_EQ((*mapping)[v], x);
  // A source id beyond num_values never constrains the search either (it
  // just cannot be recorded in the id-indexed mapping).
  Value stale = static_cast<Value>(a.num_values() + 5);
  EXPECT_TRUE(RefHomomorphismExists(a, b, {{stale, x}}));
}

TEST(ReferenceHomTest, PointedEquivalenceDistinguishesPathEnds) {
  // Both pointed at sources of a 1-edge path: equivalent. Source vs sink:
  // not equivalent (no hom maps a source onto a sink of the same path).
  Database a(GraphSchema());
  std::vector<Value> p = AddPath(a, "p", 1);
  Database b(GraphSchema());
  std::vector<Value> q = AddPath(b, "q", 1);
  EXPECT_TRUE(RefHomEquivalent(a, {p[0]}, b, {q[0]}));
  EXPECT_FALSE(RefHomEquivalent(a, {p[0]}, b, {q[1]}));
}

TEST(ReferenceHomTest, EvaluationMatchesHandAnswer) {
  // q(x) := Eta(x), E(x, y): entities with an outgoing edge.
  auto schema = GraphSchema();
  ConjunctiveQuery q(schema);
  Variable x = q.NewVariable("x");
  Variable y = q.NewVariable("y");
  q.AddFreeVariable(x);
  q.AddAtom(schema->entity_relation(), {x});
  q.AddAtom(schema->FindRelation("E"), {x, y});

  Database db(schema);
  Value a = AddEntity(db, "a");
  Value b = AddEntity(db, "b");
  AddEntity(db, "c");
  Value d = db.Intern("d");  // Not an entity.
  db.AddFact(db.schema().FindRelation("E"), {a, b});
  db.AddFact(db.schema().FindRelation("E"), {d, a});

  std::vector<Value> answers = RefEvaluateUnaryCq(q, db);
  EXPECT_EQ(answers, std::vector<Value>({a}));
}

TEST(ReferenceHomTest, ContainmentKnownAnswers) {
  // q1(x) := Eta(x), E(x, y), E(y, z)  (2-step walk)
  // q2(x) := Eta(x), E(x, y)           (1-step walk)
  auto schema = GraphSchema();
  RelationId e = schema->FindRelation("E");
  ConjunctiveQuery q1(schema);
  {
    Variable x = q1.NewVariable("x");
    Variable y = q1.NewVariable("y");
    Variable z = q1.NewVariable("z");
    q1.AddFreeVariable(x);
    q1.AddAtom(schema->entity_relation(), {x});
    q1.AddAtom(e, {x, y});
    q1.AddAtom(e, {y, z});
  }
  ConjunctiveQuery q2(schema);
  {
    Variable x = q2.NewVariable("x");
    Variable y = q2.NewVariable("y");
    q2.AddFreeVariable(x);
    q2.AddAtom(schema->entity_relation(), {x});
    q2.AddAtom(e, {x, y});
  }
  EXPECT_TRUE(RefIsContainedIn(q1, q2));   // More atoms, fewer answers.
  EXPECT_FALSE(RefIsContainedIn(q2, q1));  // E(a,b) alone answers q2 only.
  EXPECT_TRUE(RefIsContainedIn(q1, q1));
  // The optimized engine agrees on the same pair.
  EXPECT_TRUE(IsContainedIn(q1, q2));
  EXPECT_FALSE(IsContainedIn(q2, q1));
}

TEST(ReferenceHomTest, AgreesWithKernelOnHandcraftedInstances) {
  Database c6(GraphSchema());
  AddCycle(c6, "a", 6);
  Database c3(GraphSchema());
  AddCycle(c3, "b", 3);
  Database p4(GraphSchema());
  AddPath(p4, "p", 4);
  const Database* dbs[] = {&c6, &c3, &p4};
  for (const Database* from : dbs) {
    for (const Database* to : dbs) {
      EXPECT_EQ(RefHomomorphismExists(*from, *to),
                HomomorphismExists(*from, *to))
          << "oracle and kernel disagree";
    }
  }
}

}  // namespace
}  // namespace featsep
