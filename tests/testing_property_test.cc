#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "io/writer.h"
#include "testing/fuzz.h"
#include "testing/properties.h"
#include "testing/random_instance.h"
#include "testing/shrink.h"
#include "test_util.h"
#include "workload/generators.h"

namespace featsep {
namespace {

using ::featsep::testing::AddPath;
using ::featsep::testing::FuzzConfig;
using ::featsep::testing::FuzzOptions;
using ::featsep::testing::FuzzReport;
using ::featsep::testing::GraphSchema;
using ::featsep::testing::ParseFuzzConfig;
using ::featsep::testing::RandomDatabase;
using ::featsep::testing::RandomDatabaseParams;
using ::featsep::testing::RandomSchema;
using ::featsep::testing::RandomSchemaParams;
using ::featsep::testing::RunFuzz;
using ::featsep::testing::ShrinkCqInstance;
using ::featsep::testing::ShrinkDatabase;
using ::featsep::testing::WithoutAtom;
using ::featsep::testing::WithoutFact;
using ::featsep::testing::WithoutValue;

// ---------------------------------------------------------------------------
// Generators: determinism and shape.

TEST(RandomInstanceTest, SameSeedSameInstance) {
  for (std::uint64_t seed : {1ull, 7ull, 99ull}) {
    WorkloadRng rng1(seed);
    WorkloadRng rng2(seed);
    RandomSchemaParams sp;
    auto s1 = RandomSchema(sp, rng1);
    auto s2 = RandomSchema(sp, rng2);
    RandomDatabaseParams dp;
    Database d1 = RandomDatabase(s1, dp, rng1);
    Database d2 = RandomDatabase(s2, dp, rng2);
    EXPECT_EQ(WriteDatabase(d1), WriteDatabase(d2));
  }
}

TEST(RandomInstanceTest, DifferentSeedsDiverge) {
  RandomSchemaParams sp;
  RandomDatabaseParams dp;
  WorkloadRng rng1(1);
  WorkloadRng rng2(2);
  Database d1 = RandomDatabase(RandomSchema(sp, rng1), dp, rng1);
  Database d2 = RandomDatabase(RandomSchema(sp, rng2), dp, rng2);
  EXPECT_NE(WriteDatabase(d1), WriteDatabase(d2));
}

TEST(RandomInstanceTest, TrainingDatabaseIsFullyLabeled) {
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    WorkloadRng rng(seed);
    RandomSchemaParams sp;
    sp.entity_schema = true;
    auto schema = RandomSchema(sp, rng);
    RandomDatabaseParams dp;
    auto training =
        featsep::testing::RandomTrainingDatabase(schema, dp, rng);
    EXPECT_TRUE(training->IsFullyLabeled()) << "seed " << seed;
    EXPECT_FALSE(training->Entities().empty()) << "seed " << seed;
  }
}

// ---------------------------------------------------------------------------
// Shrinking: removal edits preserve ids; greedy loops reach local minima.

TEST(ShrinkTest, WithoutFactRemovesExactlyOne) {
  Database db(GraphSchema());
  AddPath(db, "p", 3);
  std::size_t before = db.size();
  Database smaller = WithoutFact(db, 0);
  EXPECT_EQ(smaller.size(), before - 1);
  EXPECT_EQ(smaller.num_values(), db.num_values());  // Values survive.
}

TEST(ShrinkTest, WithoutValueDropsIncidentFacts) {
  Database db(GraphSchema());
  std::vector<Value> p = AddPath(db, "p", 2);  // E(p0,p1), E(p1,p2).
  Database smaller = WithoutValue(db, p[1]);
  EXPECT_EQ(smaller.size(), 0u);  // Both edges touch p1.
}

TEST(ShrinkTest, ShrinkDatabaseReachesMinimalSelfLoop) {
  Database db(GraphSchema());
  Value a = db.Intern("a");
  db.AddFact(db.schema().FindRelation("E"), {a, a});
  AddPath(db, "p", 3);
  db.AddFact("E", {"q0", "q1"});
  auto has_self_loop = [](const Database& d) {
    for (const Fact& f : d.facts()) {
      if (f.args.size() == 2 && f.args[0] == f.args[1]) return true;
    }
    return false;
  };
  ASSERT_TRUE(has_self_loop(db));
  Database shrunk = ShrinkDatabase(std::move(db), has_self_loop);
  // 1-minimal: the loop fact alone, over the single value it needs.
  EXPECT_EQ(shrunk.size(), 1u);
  EXPECT_EQ(shrunk.domain().size(), 1u);
  EXPECT_TRUE(has_self_loop(shrunk));
}

TEST(ShrinkTest, WithoutAtomPreservesFreeVariables) {
  auto schema = GraphSchema();
  ConjunctiveQuery q(schema);
  Variable x = q.NewVariable("x");
  Variable y = q.NewVariable("y");
  q.AddFreeVariable(x);
  q.AddAtom(schema->entity_relation(), {x});
  q.AddAtom(schema->FindRelation("E"), {x, y});
  ConjunctiveQuery smaller = WithoutAtom(q, 1);
  EXPECT_EQ(smaller.atoms().size(), 1u);
  EXPECT_EQ(smaller.free_variables(), q.free_variables());
  EXPECT_EQ(smaller.num_variables(), q.num_variables());
}

TEST(ShrinkTest, ShrinkCqInstanceMinimizesBothSides) {
  auto schema = GraphSchema();
  RelationId e = schema->FindRelation("E");
  ConjunctiveQuery q(schema);
  Variable x = q.NewVariable("x");
  Variable y = q.NewVariable("y");
  Variable z = q.NewVariable("z");
  q.AddFreeVariable(x);
  q.AddAtom(schema->entity_relation(), {x});
  q.AddAtom(e, {x, y});
  q.AddAtom(e, {y, z});
  Database db(GraphSchema());
  AddPath(db, "p", 4);
  auto predicate = [&](const ConjunctiveQuery& query, const Database& d) {
    // Failure persists while the query keeps an E atom and the data keeps
    // at least one edge.
    bool query_has_edge = false;
    for (const auto& atom : query.atoms()) {
      if (atom.relation == e) query_has_edge = true;
    }
    return query_has_edge && d.size() > 0;
  };
  auto [sq, sdb] = ShrinkCqInstance(std::move(q), std::move(db), predicate);
  EXPECT_EQ(sq.atoms().size(), 1u);
  EXPECT_EQ(sdb.size(), 1u);
  EXPECT_TRUE(predicate(sq, sdb));
}

// ---------------------------------------------------------------------------
// Fuzz loop: every config clean on a bounded seed sweep, deterministically.

TEST(FuzzTest, ParseFuzzConfigRoundTrips) {
  for (FuzzConfig config :
       {FuzzConfig::kHom, FuzzConfig::kEval, FuzzConfig::kContainment,
        FuzzConfig::kCore, FuzzConfig::kGhw, FuzzConfig::kSep,
        FuzzConfig::kQbe, FuzzConfig::kMixed}) {
    auto parsed = ParseFuzzConfig(featsep::testing::FuzzConfigName(config));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, config);
  }
  EXPECT_FALSE(ParseFuzzConfig("nonsense").has_value());
}

TEST(FuzzTest, AllConfigsCleanOnSeedSweep) {
  for (FuzzConfig config :
       {FuzzConfig::kHom, FuzzConfig::kEval, FuzzConfig::kContainment,
        FuzzConfig::kCore, FuzzConfig::kGhw, FuzzConfig::kSep,
        FuzzConfig::kQbe}) {
    FuzzOptions options;
    options.config = config;
    options.seed = 1000;
    options.iterations = 25;
    FuzzReport report = RunFuzz(options);
    EXPECT_TRUE(report.ok())
        << featsep::testing::FuzzConfigName(config) << ": "
        << (report.failures.empty() ? "" : report.failures[0].detail);
    EXPECT_EQ(report.iterations, 25u);
  }
}

TEST(FuzzTest, MixedRunIsDeterministic) {
  FuzzOptions options;
  options.config = FuzzConfig::kMixed;
  options.seed = 5;
  options.iterations = 30;
  FuzzReport r1 = RunFuzz(options);
  FuzzReport r2 = RunFuzz(options);
  EXPECT_EQ(r1.iterations, r2.iterations);
  EXPECT_EQ(r1.failures.size(), r2.failures.size());
  EXPECT_TRUE(r1.ok());
}

}  // namespace
}  // namespace featsep
