#include "serve/eval_service.h"

#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "core/separability.h"
#include "core/statistic.h"
#include "cq/evaluation.h"
#include "qbe/qbe.h"
#include "relational/training_database.h"
#include "serve/incremental.h"
#include "test_util.h"

namespace featsep {
namespace {

using ::featsep::testing::AddEdge;
using ::featsep::testing::AddEntity;
using ::featsep::testing::GraphSchema;
using ::featsep::testing::MakeWorld;
using ::featsep::testing::MakeWorldReordered;
using ::featsep::testing::OutInFeatures;
using serve::EvalService;
using serve::ServeOptions;
using serve::ServeStats;

TEST(EvalServiceTest, AnswerMatchesKernelEvaluator) {
  Database db = MakeWorld();
  std::vector<ConjunctiveQuery> features = OutInFeatures();
  EvalService service;
  for (const ConjunctiveQuery& feature : features) {
    auto answer = service.Answer(feature, db);
    ASSERT_NE(answer, nullptr);
    CqEvaluator evaluator(feature);
    for (Value e : db.Entities()) {
      EXPECT_EQ(answer->Selects(db, e), evaluator.SelectsEntity(db, e))
          << feature.ToString() << " on " << db.value_name(e);
    }
  }
}

TEST(EvalServiceTest, MatrixBitIdenticalAcrossShardCounts) {
  Database db = MakeWorld();
  Statistic statistic(OutInFeatures());
  std::vector<FeatureVector> serial = statistic.Matrix(db);
  for (std::size_t shards : {1ul, 2ul, 8ul}) {
    ServeOptions options;
    options.num_shards = shards;
    options.entity_block = 1;  // Force one work item per entity.
    EvalService service(options);
    EXPECT_EQ(service.Matrix(statistic.features(), db), serial)
        << "shards = " << shards;
    EXPECT_EQ(statistic.Matrix(db, &service), serial)
        << "shards = " << shards;
  }
}

TEST(EvalServiceTest, VectorMatchesSerialStatistic) {
  Database db = MakeWorld();
  Statistic statistic(OutInFeatures());
  EvalService service;
  for (Value e : db.Entities()) {
    EXPECT_EQ(service.Vector(statistic.features(), db, e),
              statistic.Vector(db, e));
    EXPECT_EQ(statistic.Vector(db, e, &service), statistic.Vector(db, e));
  }
}

TEST(EvalServiceTest, WarmCallsHitTheCache) {
  Database db = MakeWorld();
  std::vector<ConjunctiveQuery> features = OutInFeatures();
  EvalService service;
  std::vector<FeatureVector> cold = service.Matrix(features, db);
  ServeStats after_cold = service.stats();
  EXPECT_EQ(after_cold.cache_misses, features.size());
  EXPECT_EQ(after_cold.cache_hits, 0u);
  EXPECT_EQ(after_cold.features_evaluated, features.size());
  EXPECT_EQ(service.cache_size(), features.size());

  std::vector<FeatureVector> warm = service.Matrix(features, db);
  ServeStats after_warm = service.stats();
  EXPECT_EQ(warm, cold);
  EXPECT_EQ(after_warm.cache_hits, features.size());
  // No new kernel work on the warm call.
  EXPECT_EQ(after_warm.features_evaluated, features.size());
  EXPECT_EQ(after_warm.entity_evaluations, after_cold.entity_evaluations);
}

TEST(EvalServiceTest, CacheTransfersBetweenEqualContentDatabases) {
  Database db1 = MakeWorld();
  Database db2 = MakeWorldReordered();
  ASSERT_EQ(db1.ContentDigest(), db2.ContentDigest());
  ASSERT_NE(db1.FindValue("both"), db2.FindValue("both"));  // Ids differ.

  Statistic statistic(OutInFeatures());
  EvalService service;
  service.Matrix(statistic.features(), db1);  // Warm on db1's content.
  std::vector<FeatureVector> served = service.Matrix(statistic.features(), db2);
  ServeStats stats = service.stats();
  // db2 was answered purely from db1's entries...
  EXPECT_EQ(stats.cache_hits, statistic.dimension());
  EXPECT_EQ(stats.features_evaluated, statistic.dimension());
  // ...and still in db2's own entity order and value ids.
  EXPECT_EQ(served, statistic.Matrix(db2));
}

TEST(EvalServiceTest, LruEvictsAtCapacity) {
  Database db = MakeWorld();
  std::vector<ConjunctiveQuery> features = OutInFeatures();
  ServeOptions options;
  options.cache_capacity = 1;
  EvalService service(options);
  service.Matrix(features, db);  // Two features through a one-entry cache.
  ServeStats stats = service.stats();
  EXPECT_GE(stats.cache_evictions, 1u);
  EXPECT_EQ(service.cache_size(), 1u);
  // Results stay correct regardless of eviction pressure.
  EXPECT_EQ(service.Matrix(features, db), Statistic(features).Matrix(db));
}

TEST(EvalServiceTest, ZeroCapacityDisablesCaching) {
  Database db = MakeWorld();
  std::vector<ConjunctiveQuery> features = OutInFeatures();
  ServeOptions options;
  options.cache_capacity = 0;
  EvalService service(options);
  std::vector<FeatureVector> first = service.Matrix(features, db);
  std::vector<FeatureVector> second = service.Matrix(features, db);
  EXPECT_EQ(first, second);
  EXPECT_EQ(service.cache_size(), 0u);
  EXPECT_EQ(service.stats().cache_hits, 0u);
  EXPECT_EQ(service.stats().features_evaluated, 2 * features.size());
}

TEST(EvalServiceTest, ClearCacheForcesReevaluation) {
  Database db = MakeWorld();
  std::vector<ConjunctiveQuery> features = OutInFeatures();
  EvalService service;
  service.Matrix(features, db);
  service.ClearCache();
  EXPECT_EQ(service.cache_size(), 0u);
  service.Matrix(features, db);
  EXPECT_EQ(service.stats().features_evaluated, 2 * features.size());
}

TEST(EvalServiceTest, SeparatorModelAppliesThroughService) {
  auto db = std::make_shared<Database>(MakeWorld());
  SeparatorModel model{Statistic({OutInFeatures()[0]}),
                       LinearClassifier(Rational(1), {Rational(1)})};
  EvalService service;
  Labeling serial = model.Apply(*db);
  Labeling served = model.Apply(*db, &service);
  for (Value e : db->Entities()) {
    EXPECT_EQ(served.Get(e), serial.Get(e));
  }

  TrainingDatabase training(db);
  for (Value e : db->Entities()) training.SetLabel(e, serial.Get(e));
  EXPECT_EQ(MakeTrainingCollection(model.statistic, training, &service),
            MakeTrainingCollection(model.statistic, training));
}

TEST(EvalServiceTest, DecideCqmSepMatchesSerialPath) {
  auto db = std::make_shared<Database>(GraphSchema());
  Value pos = AddEntity(*db, "pos");
  Value neg = AddEntity(*db, "neg");
  AddEdge(*db, "pos", "t");
  TrainingDatabase training(db);
  training.SetLabel(pos, kPositive);
  training.SetLabel(neg, kNegative);

  CqmSepResult serial = DecideCqmSep(training, 1);
  EvalService service;
  CqmSepOptions options;
  options.service = &service;
  for (int round = 0; round < 2; ++round) {  // Cold cache, then warm.
    CqmSepResult served = DecideCqmSep(training, 1, options);
    EXPECT_EQ(served.separable, serial.separable);
    EXPECT_EQ(served.features_enumerated, serial.features_enumerated);
    ASSERT_EQ(served.model.has_value(), serial.model.has_value());
    if (served.model.has_value()) {
      EXPECT_EQ(served.model->statistic.ToString(),
                serial.model->statistic.ToString());
      EXPECT_EQ(served.model->TrainingErrors(training),
                serial.model->TrainingErrors(training));
    }
  }
  EXPECT_GT(service.stats().cache_hits, 0u);  // Round two reused round one.
}

TEST(EvalServiceTest, SolveCqmQbeMatchesSerialPath) {
  Database db(GraphSchema());
  Value pos = AddEntity(db, "pos");
  Value neg = AddEntity(db, "neg");
  AddEdge(db, "pos", "t");

  QbeInstance instance;
  instance.db = &db;
  instance.positives = {pos};
  instance.negatives = {neg};

  QbeResult serial = SolveCqmQbe(instance, 1);
  ASSERT_TRUE(serial.exists);
  EvalService service;
  QbeOptions options;
  options.service = &service;
  for (int round = 0; round < 2; ++round) {  // Cold cache, then warm.
    QbeResult served = SolveCqmQbe(instance, 1, 0, options);
    EXPECT_EQ(served.exists, serial.exists);
    ASSERT_TRUE(served.explanation.has_value());
    EXPECT_EQ(served.explanation->ToString(), serial.explanation->ToString());
  }
  EXPECT_GT(service.stats().cache_hits, 0u);
}

TEST(EvalServiceCoherenceTest, StaleEntriesAreNeverServedAfterMutation) {
  // A mutated database has a new content digest, so pre-mutation cache
  // entries — still resident in the LRU — can never answer for it, with or
  // without delta maintenance running.
  Database db = MakeWorld();
  std::vector<ConjunctiveQuery> features = OutInFeatures();
  ServeOptions options;
  options.num_shards = 1;
  options.cache_capacity = 16;
  EvalService service(options);
  service.Matrix(features, db);
  const std::uint64_t old_digest = db.ContentDigest();

  Delta delta = db.InsertFact(db.schema().FindRelation("E"),
                              {db.FindValue("none"), db.FindValue("t")});
  ASSERT_TRUE(delta.applied);
  // No maintenance ran: the old entries still exist under the old digest,
  // but a read against the mutated database re-evaluates under the new one.
  ASSERT_NE(service.PeekCached(old_digest, features[0].ToString()), nullptr);
  Statistic statistic(features);
  EXPECT_EQ(service.Matrix(features, db), statistic.Matrix(db));
  auto fresh = service.PeekCached(db.ContentDigest(), features[0].ToString());
  ASSERT_NE(fresh, nullptr);
  EXPECT_TRUE(fresh->SelectsName("none")) << "served a stale answer";
}

TEST(EvalServiceCoherenceTest, MutationSoakStaysBitIdenticalToCold) {
  // Interleaved reads and mutations: after every mutation, the warm
  // service's matrix must equal a cold single-shard cache-free service run
  // on a from-scratch rebuild of the same content.
  Database db = MakeWorld();
  std::vector<ConjunctiveQuery> features = OutInFeatures();
  ServeOptions warm_options;
  warm_options.num_shards = 1;
  warm_options.cache_capacity = 16;
  EvalService warm(warm_options);
  serve::IncrementalMaintainer maintainer(&warm, features);
  warm.Matrix(features, db);

  RelationId edge = db.schema().FindRelation("E");
  RelationId eta = db.schema().entity_relation();
  const struct {
    RelationId relation;
    const char* a;
    const char* b;  // nullptr for unary η mutations.
    bool insert;
  } kSoak[] = {
      {edge, "none", "t", true},   {edge, "both", "t", false},
      {eta, "t", nullptr, true},   {edge, "u", "both", false},
      {eta, "t", nullptr, false},  {edge, "none", "t", false},
      {eta, "none", nullptr, false},
  };
  for (const auto& step : kSoak) {
    std::vector<Value> args;
    args.push_back(db.Intern(step.a));
    if (step.b != nullptr) args.push_back(db.Intern(step.b));
    Delta delta = step.insert ? db.InsertFact(step.relation, args)
                              : db.RemoveFact(step.relation, args);
    maintainer.ApplyDelta(db, delta);

    Database rebuilt(db.schema_ptr());
    for (std::size_t v = 0; v < db.num_values(); ++v) {
      rebuilt.Intern(db.value_name(static_cast<Value>(v)));
    }
    for (const Fact& fact : db.facts()) {
      rebuilt.AddFact(fact.relation, fact.args);
    }
    ServeOptions cold_options;
    cold_options.num_shards = 1;
    cold_options.cache_capacity = 0;
    EvalService cold(cold_options);
    EXPECT_EQ(warm.Matrix(features, db), cold.Matrix(features, rebuilt))
        << "warm reads diverged from cold after a mutation";
  }
}

TEST(CqEvaluatorReuseTest, OneEvaluatorAcrossCollidingDatabases) {
  // Satellite audit: a CqEvaluator holds only query-derived state, so one
  // instance must answer correctly across databases whose value ids collide
  // (same numeric ids naming different constants), interleaved.
  std::vector<ConjunctiveQuery> features = OutInFeatures();
  CqEvaluator evaluator(features[0]);  // "Has an out-edge".

  Database db1(GraphSchema());
  Value a1 = AddEntity(db1, "a");
  Value b1 = AddEntity(db1, "b");
  AddEdge(db1, "a", "b");  // a has an out-edge, b does not.

  Database db2(GraphSchema());
  Value b2 = AddEntity(db2, "b");  // db2 ids: "b" and "a" swapped vs db1.
  Value a2 = AddEntity(db2, "a");
  AddEdge(db2, "b", "a");  // Here b has the out-edge.

  ASSERT_EQ(a1, b2);  // The collision the audit is about.
  for (int round = 0; round < 3; ++round) {
    EXPECT_TRUE(evaluator.SelectsEntity(db1, a1));
    EXPECT_TRUE(evaluator.SelectsEntity(db2, b2));
    EXPECT_FALSE(evaluator.SelectsEntity(db1, b1));
    EXPECT_FALSE(evaluator.SelectsEntity(db2, a2));
  }
}

}  // namespace
}  // namespace featsep
