// Cross-module consistency properties: different algorithms of the paper
// must agree wherever the theory says they coincide.

#include <memory>
#include <random>

#include <gtest/gtest.h>

#include "core/approx.h"
#include "core/ghw_separability.h"
#include "core/separability.h"
#include "cq/evaluation.h"
#include "qbe/fo_qbe.h"
#include "qbe/qbe.h"
#include "test_util.h"

namespace featsep {
namespace {

using ::featsep::testing::AddEntity;
using ::featsep::testing::GraphSchema;

std::shared_ptr<TrainingDatabase> RandomTraining(std::mt19937_64& rng,
                                                 int entities, int extras,
                                                 int edges) {
  auto db = std::make_shared<Database>(GraphSchema());
  auto training = std::make_shared<TrainingDatabase>(db);
  std::vector<Value> values;
  for (int i = 0; i < entities; ++i) {
    Value e = AddEntity(*db, "e" + std::to_string(i));
    training->SetLabel(e, rng() % 2 == 0 ? kPositive : kNegative);
    values.push_back(e);
  }
  for (int i = 0; i < extras; ++i) {
    values.push_back(db->Intern("x" + std::to_string(i)));
  }
  RelationId edge = db->schema().FindRelation("E");
  for (int i = 0; i < edges; ++i) {
    db->AddFact(edge, {values[rng() % values.size()],
                       values[rng() % values.size()]});
  }
  return training;
}

// →_k coincides with → once k covers the whole database, so GHW(k)-SEP at
// k = |D| must agree with CQ-SEP (the k-cover chain of Section 5 bottoms
// out).
TEST(CrossValidation, GhwSepAtFullWidthEqualsCqSep) {
  std::mt19937_64 rng(59);
  int checked = 0;
  for (int trial = 0; trial < 12; ++trial) {
    auto training = RandomTraining(rng, 3, 2, 4);
    std::size_t k = training->database().size();
    if (k == 0) continue;
    bool cq = DecideCqSep(*training).separable;
    bool ghw = DecideGhwSep(*training, k).separable;
    EXPECT_EQ(cq, ghw) << "trial " << trial;
    ++checked;
  }
  EXPECT_GT(checked, 0);
}

// CQ[m] ⊆ CQ: CQ[m]-separability implies CQ-separability.
TEST(CrossValidation, CqmImpliesCq) {
  std::mt19937_64 rng(61);
  int implications = 0;
  for (int trial = 0; trial < 10; ++trial) {
    auto training = RandomTraining(rng, 3, 2, 5);
    if (DecideCqmSep(*training, 2).separable) {
      EXPECT_TRUE(DecideCqSep(*training).separable);
      ++implications;
    }
  }
  EXPECT_GT(implications, 0);
}

// GHW(k)-separability (any k) implies CQ-separability — GHW(k) ⊆ CQ.
TEST(CrossValidation, GhwImpliesCq) {
  std::mt19937_64 rng(67);
  int implications = 0;
  for (int trial = 0; trial < 10; ++trial) {
    auto training = RandomTraining(rng, 3, 1, 4);
    if (DecideGhwSep(*training, 1).separable) {
      EXPECT_TRUE(DecideCqSep(*training).separable);
      ++implications;
    }
  }
  EXPECT_GT(implications, 0);
}

// Whenever GhwClassifier trains, it reproduces the training labels (the
// (Π, Λ) pair separates (D, λ), Theorem 5.8).
TEST(CrossValidation, GhwClassifierAlwaysFitsItsTrainingData) {
  std::mt19937_64 rng(71);
  int trained = 0;
  for (int trial = 0; trial < 10; ++trial) {
    auto training = RandomTraining(rng, 3, 2, 4);
    auto classifier = GhwClassifier::Train(training, 1);
    if (!classifier.has_value()) continue;
    ++trained;
    Labeling predicted = classifier->Classify(training->database());
    for (Value e : training->Entities()) {
      EXPECT_EQ(predicted.Get(e), training->label(e)) << "trial " << trial;
    }
  }
  EXPECT_GT(trained, 0);
}

// ε = 0 approximate separability is exactly perfect separability.
TEST(CrossValidation, ApxSepAtZeroEpsilonEqualsSep) {
  std::mt19937_64 rng(73);
  for (int trial = 0; trial < 6; ++trial) {
    auto training = RandomTraining(rng, 3, 1, 3);
    bool exact = DecideCqmSep(*training, 1).separable;
    CqmApxSepResult apx = DecideCqmApxSep(*training, 1, 0.0);
    EXPECT_EQ(exact, apx.separable_with_error) << trial;
    EXPECT_EQ(exact, apx.min_errors == 0) << trial;
  }
}

// The minimized CQ-QBE explanation with t atoms witnesses CQ[t]-QBE.
TEST(CrossValidation, MinimizedExplanationBoundsCqmQbe) {
  auto db = std::make_shared<Database>(GraphSchema());
  Value p = AddEntity(*db, "p");
  Value n = AddEntity(*db, "n");
  testing::AddEdge(*db, "p", "a");
  testing::AddEdge(*db, "a", "b");
  testing::AddEdge(*db, "n", "c");
  QbeInstance instance{db.get(), {p}, {n}};
  QbeOptions options;
  options.minimize_explanation = true;
  QbeResult cq = SolveCqQbe(instance, options);
  ASSERT_TRUE(cq.exists);
  std::size_t atoms = cq.explanation->NumAtoms(false);
  EXPECT_TRUE(SolveCqmQbe(instance, atoms).exists);
}

// CQ ⊆ FO: a CQ explanation implies an FO explanation.
TEST(CrossValidation, CqQbeImpliesFoQbe) {
  std::mt19937_64 rng(79);
  int implications = 0;
  for (int trial = 0; trial < 8; ++trial) {
    auto training = RandomTraining(rng, 4, 1, 5);
    std::vector<Value> entities = training->Entities();
    QbeInstance instance{&training->database(),
                         {entities[0], entities[1]},
                         {entities[2], entities[3]}};
    if (SolveCqQbe(instance).exists) {
      EXPECT_TRUE(SolveFoQbe(instance).exists) << trial;
      ++implications;
    }
  }
  EXPECT_GT(implications, 0);
}

// The explanation returned by SolveCqQbe always verifies against the
// instance (soundness of the product method).
TEST(CrossValidation, CqQbeExplanationsAlwaysVerify) {
  std::mt19937_64 rng(83);
  int verified = 0;
  for (int trial = 0; trial < 8; ++trial) {
    auto training = RandomTraining(rng, 4, 1, 4);
    std::vector<Value> entities = training->Entities();
    QbeInstance instance{&training->database(),
                         {entities[0], entities[1]},
                         {entities[2]}};
    QbeResult result = SolveCqQbe(instance);
    if (!result.exists) continue;
    ++verified;
    CqEvaluator evaluator(*result.explanation);
    for (Value p : instance.positives) {
      EXPECT_TRUE(evaluator.SelectsEntity(training->database(), p));
    }
    for (Value n : instance.negatives) {
      EXPECT_FALSE(evaluator.SelectsEntity(training->database(), n));
    }
  }
  EXPECT_GT(verified, 0);
}

}  // namespace
}  // namespace featsep
