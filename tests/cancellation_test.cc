// Deadline / cancellation robustness across the decision procedures and the
// serve path: zero and expired deadlines are honoured at entry, a
// pathological instance under a 10 ms deadline returns TimedOut within a
// bounded wall-clock factor, interrupted serve requests never poison the
// cache, an interrupted SolveCqmQbe sweep resumes to the uninterrupted
// answer, and the fuzz loop itself honours a cancelled budget.

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/separability.h"
#include "core/statistic.h"
#include "covergame/cover_game.h"
#include "cq/enumeration.h"
#include "cq/homomorphism.h"
#include "hypertree/ghw.h"
#include "hypertree/hypergraph.h"
#include "linsep/separability_lp.h"
#include "qbe/qbe.h"
#include "serve/eval_service.h"
#include "test_util.h"
#include "testing/corpus.h"
#include "testing/fuzz.h"
#include "testing/instance.h"
#include "util/budget.h"

namespace featsep {
namespace testing {
namespace {

using std::chrono::milliseconds;
using std::chrono::seconds;

// Fixtures ExpiredBudget/AddClique/SmallTraining live in test_util.h,
// shared with budget_test.cc and serve_async_test.cc.

// --- The acceptance bound -------------------------------------------------

TEST(CancellationTest, PathologicalCqSepTimesOutWithinBound) {
  // K13 ⊔ K12 with one entity per clique, oppositely labeled. The single
  // differently-labeled pair forces HomEquivalent across the components:
  // pinning the K13 entity onto the K12 one demands a proper 11-coloring of
  // a 12-clique, so the refutation alone explores ~11! search nodes —
  // several seconds of kernel work. A 10 ms deadline must surface as
  // kTimedOut after a small constant factor, not after the search drains.
  auto db = std::make_shared<Database>(GraphSchema());
  AddClique(*db, "a", 13);
  AddClique(*db, "b", 12);
  Value a0 = AddEntity(*db, "a0");
  Value b0 = AddEntity(*db, "b0");
  TrainingDatabase training(db);
  training.SetLabel(a0, 1);
  training.SetLabel(b0, -1);

  ExecutionBudget budget = ExecutionBudget::WithTimeout(milliseconds(10));
  CqSepOptions options;
  options.budget = &budget;
  auto start = ExecutionBudget::Clock::now();
  CqSepResult result = DecideCqSep(training, options);
  auto elapsed = ExecutionBudget::Clock::now() - start;

  EXPECT_EQ(result.outcome, BudgetOutcome::kTimedOut);
  EXPECT_FALSE(result.conflict.has_value());
  // Generous bound (sanitizer builds run this too): 200x the deadline is
  // still orders of magnitude below the uninterrupted search.
  EXPECT_LT(elapsed, seconds(2)) << "cancellation latency unbounded";
}

// --- Zero/expired deadline at entry ---------------------------------------

TEST(CancellationTest, ExpiredDeadlineStopsHomSearchAtEntry) {
  std::shared_ptr<const Schema> schema = GraphSchema();
  Database from(schema);
  AddPath(from, "p", 2);
  Database to(schema);
  AddCycle(to, "c", 3);
  ExecutionBudget budget = ExpiredBudget();
  HomOptions options;
  options.budget = &budget;
  HomResult result = FindHomomorphism(from, to, {}, options);
  EXPECT_EQ(result.status, HomStatus::kExhausted);
  EXPECT_EQ(result.outcome, BudgetOutcome::kTimedOut);
  EXPECT_EQ(result.nodes, 0u);
}

TEST(CancellationTest, ExpiredDeadlineStopsCqSepAtEntry) {
  TrainingDatabase training = SmallTraining();
  ExecutionBudget budget = ExpiredBudget();
  CqSepOptions options;
  options.budget = &budget;
  CqSepResult result = DecideCqSep(training, options);
  EXPECT_EQ(result.outcome, BudgetOutcome::kTimedOut);
  EXPECT_FALSE(result.separable);
  EXPECT_FALSE(result.conflict.has_value());
  EXPECT_EQ(result.pairs_checked, 0u);
}

TEST(CancellationTest, ExpiredDeadlineStopsCqmSepAtEntry) {
  TrainingDatabase training = SmallTraining();
  ExecutionBudget budget = ExpiredBudget();
  CqmSepOptions options;
  options.budget = &budget;
  CqmSepResult result = DecideCqmSep(training, 1, options);
  EXPECT_EQ(result.outcome, BudgetOutcome::kTimedOut);
  EXPECT_FALSE(result.separable);
  EXPECT_FALSE(result.model.has_value());
}

TEST(CancellationTest, ExpiredDeadlineStopsSimplexAtEntry) {
  TrainingCollection examples = {{{1, -1}, 1}, {{-1, 1}, -1}};
  ASSERT_TRUE(FindSeparator(examples).has_value());
  ExecutionBudget budget = ExpiredBudget();
  SeparatorSearch search = TryFindSeparator(examples, &budget);
  EXPECT_EQ(search.outcome, BudgetOutcome::kTimedOut);
  EXPECT_FALSE(search.classifier.has_value());
}

TEST(CancellationTest, ExpiredDeadlineStopsGhwAtEntry) {
  Hypergraph triangle(3);
  triangle.AddEdge({0, 1});
  triangle.AddEdge({1, 2});
  triangle.AddEdge({0, 2});
  ExecutionBudget budget = ExpiredBudget();
  GhwOptions options;
  options.budget = &budget;
  GhwDecision decision = TryDecideGhwAtMost(triangle, 1, options);
  EXPECT_EQ(decision.outcome, BudgetOutcome::kTimedOut);
  EXPECT_FALSE(decision.decomposition.has_value());
}

TEST(CancellationTest, ExpiredDeadlineStopsCoverGameAtEntry) {
  TrainingDatabase training = SmallTraining();
  const Database& db = training.database();
  std::vector<Value> entities = db.Entities();
  ASSERT_EQ(entities.size(), 2u);
  ExecutionBudget budget = ExpiredBudget();
  CoverGameSolver solver(db, db, 1, &budget);
  Budgeted<bool> decision = solver.TryDecide({entities[0]}, {entities[1]});
  EXPECT_EQ(decision.outcome, BudgetOutcome::kTimedOut);
  EXPECT_FALSE(decision.ok());
}

TEST(CancellationTest, ExpiredDeadlineStopsCqmQbeAtEntry) {
  TrainingDatabase training = SmallTraining();
  QbeInstance instance;
  instance.db = &training.database();
  instance.positives = training.PositiveExamples();
  instance.negatives = training.NegativeExamples();
  ExecutionBudget budget = ExpiredBudget();
  QbeOptions options;
  options.budget = &budget;
  QbeResult result = SolveCqmQbe(instance, 1, 0, options);
  EXPECT_EQ(result.outcome, BudgetOutcome::kTimedOut);
  EXPECT_FALSE(result.exists);
  EXPECT_FALSE(result.explanation.has_value());
}

TEST(CancellationTest, ExpiredDeadlineStopsTryResolveAtEntry) {
  TrainingDatabase training = SmallTraining();
  const Database& db = training.database();
  std::vector<ConjunctiveQuery> features =
      EnumerateFeatureQueries(db.schema_ptr(), 1);
  ASSERT_GE(features.size(), 2u);
  serve::EvalService service;
  ExecutionBudget budget = ExpiredBudget();
  std::vector<std::shared_ptr<const serve::FeatureAnswer>> answers =
      service.TryResolve(features, db, &budget);
  ASSERT_EQ(answers.size(), features.size());
  for (const auto& answer : answers) EXPECT_EQ(answer, nullptr);
  EXPECT_EQ(service.cache_size(), 0u) << "aborted request was cached";
  EXPECT_EQ(service.stats().features_evaluated, 0u);
}

TEST(CancellationTest, ExpiredDeadlineYieldsAllInvalidPartialMatrix) {
  TrainingDatabase training = SmallTraining();
  const Database& db = training.database();
  Statistic statistic(EnumerateFeatureQueries(db.schema_ptr(), 1));
  ExecutionBudget budget = ExpiredBudget();
  PartialMatrix partial = statistic.TryMatrix(db, &budget);
  EXPECT_EQ(partial.outcome, BudgetOutcome::kTimedOut);
  EXPECT_FALSE(partial.complete());
  ASSERT_EQ(partial.rows.size(), db.Entities().size());
  ASSERT_EQ(partial.valid.size(), partial.rows.size());
  for (std::size_t i = 0; i < partial.rows.size(); ++i) {
    ASSERT_EQ(partial.rows[i].size(), statistic.dimension());
    for (std::size_t j = 0; j < partial.rows[i].size(); ++j) {
      EXPECT_EQ(partial.valid[i][j], 0) << "cell (" << i << "," << j << ")";
      EXPECT_EQ(partial.rows[i][j], -1) << "placeholder overwritten";
    }
  }
}

// --- Serve path: interruption never poisons the cache ---------------------

TEST(CancellationTest, ServeInterruptedRequestNeverPoisonsTheCache) {
  auto db = std::make_shared<Database>(GraphSchema());
  for (int i = 0; i < 6; ++i) AddEntity(*db, "e" + std::to_string(i));
  AddEdge(*db, "e0", "e1");
  AddEdge(*db, "e1", "e2");
  AddEdge(*db, "e2", "e0");
  AddEdge(*db, "e3", "e4");
  std::vector<ConjunctiveQuery> features =
      EnumerateFeatureQueries(db->schema_ptr(), 1);
  ASSERT_GE(features.size(), 2u);
  Statistic statistic(features);
  std::vector<FeatureVector> truth = statistic.Matrix(*db);  // Serial oracle.

  serve::ServeOptions serve_options;
  serve_options.num_shards = 1;  // Deterministic shard/cancel accounting.
  serve::EvalService service(serve_options);
  ExecutionBudget budget = ExecutionBudget::WithStepLimit(1);
  std::vector<std::shared_ptr<const serve::FeatureAnswer>> answers =
      service.TryResolve(features, *db, &budget);
  ASSERT_EQ(answers.size(), features.size());
  std::size_t aborted = 0;
  for (const auto& answer : answers) {
    if (answer == nullptr) ++aborted;
  }
  EXPECT_TRUE(budget.Interrupted());
  EXPECT_GT(aborted, 0u) << "step limit 1 did not interrupt the batch";
  serve::ServeStats mid = service.stats();
  EXPECT_GE(mid.cancelled_shards, 1u);

  // Warm completion through the SAME service: whatever the aborted request
  // left behind, the answers must be bit-identical to the serial oracle.
  std::vector<FeatureVector> served = statistic.Matrix(*db, &service);
  EXPECT_EQ(served, truth);
  serve::ServeStats after = service.stats();
  EXPECT_GE(after.evaluation_retries, 1u)
      << "aborted keys were not re-requested";
}

// --- SolveCqmQbe: interrupt mid-sweep, resume, same answer ----------------

TEST(CancellationTest, CqmQbeInterruptedSweepResumesToUninterruptedAnswer) {
  auto db = std::make_shared<Database>(GraphSchema());
  Value a = AddEntity(*db, "a");
  Value b = AddEntity(*db, "b");
  Value c = AddEntity(*db, "c");
  AddEdge(*db, "a", "x");
  AddEdge(*db, "b", "y");
  AddEdge(*db, "z", "c");  // c has no outgoing edge: E(e, ·) explains {a,b}.
  QbeInstance instance;
  instance.db = db.get();
  instance.positives = {a, b};
  instance.negatives = {c};

  QbeResult baseline = SolveCqmQbe(instance, 1);
  ASSERT_EQ(baseline.outcome, BudgetOutcome::kCompleted);

  bool interrupted_once = false;
  for (std::uint64_t limit : {3ull, 10ull, 30ull, 100ull, 300ull}) {
    ExecutionBudget budget = ExecutionBudget::WithStepLimit(limit);
    QbeOptions options;
    options.budget = &budget;
    QbeResult partial = SolveCqmQbe(instance, 1, 0, options);
    if (partial.outcome == BudgetOutcome::kCompleted) {
      EXPECT_EQ(partial.exists, baseline.exists);
      continue;
    }
    interrupted_once = true;
    EXPECT_EQ(partial.outcome, BudgetOutcome::kBudgetExhausted);
    // Resume from the definitively-rejected prefix with a fresh, unbounded
    // budget: the stitched run must reproduce the uninterrupted answer.
    QbeOptions resume;
    resume.first_candidate = partial.candidates_screened;
    QbeResult resumed = SolveCqmQbe(instance, 1, 0, resume);
    EXPECT_EQ(resumed.outcome, BudgetOutcome::kCompleted);
    EXPECT_EQ(resumed.exists, baseline.exists) << "limit " << limit;
    ASSERT_EQ(resumed.explanation.has_value(),
              baseline.explanation.has_value());
    if (baseline.explanation.has_value()) {
      EXPECT_EQ(resumed.explanation->ToString(),
                baseline.explanation->ToString())
          << "limit " << limit;
    }
  }
  EXPECT_TRUE(interrupted_once) << "no step limit interrupted the sweep";
}

// --- The fuzz loop itself honours its budget ------------------------------

TEST(CancellationTest, FuzzLoopStopsOnCancelledBudget) {
  ExecutionBudget budget;
  budget.Cancel();
  FuzzOptions options;
  options.config = FuzzConfig::kHom;
  options.iterations = 50;
  options.budget = &budget;
  FuzzReport report = RunFuzz(options);
  EXPECT_EQ(report.iterations, 0u);
  EXPECT_TRUE(report.ok());
}

TEST(CancellationTest, FuzzReplayStopsOnCancelledBudget) {
  std::filesystem::path dir =
      std::filesystem::temp_directory_path() / "featsep_cancel_replay";
  std::filesystem::remove_all(dir);
  FuzzInstance instance = GenerateFuzzInstance(FuzzConfig::kHom, 1);
  auto written = WriteFuzzInstanceFile(dir.string(), instance);
  ASSERT_TRUE(written.ok()) << written.error().message();

  // Control: without a budget both replay entries run.
  FuzzOptions control;
  control.replay_paths = {written.value(), written.value()};
  FuzzReport full = RunFuzz(control);
  EXPECT_EQ(full.iterations, 2u);
  EXPECT_TRUE(full.ok());

  ExecutionBudget budget;
  budget.Cancel();
  FuzzOptions cancelled;
  cancelled.replay_paths = {written.value(), written.value()};
  cancelled.budget = &budget;
  FuzzReport report = RunFuzz(cancelled);
  EXPECT_EQ(report.iterations, 0u);
  EXPECT_TRUE(report.ok());
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace testing
}  // namespace featsep
