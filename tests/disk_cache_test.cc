#include "serve/disk_cache.h"

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#ifndef _WIN32
#include <unistd.h>
#endif

#include "core/statistic.h"
#include "serve/eval_service.h"
#include "test_util.h"

namespace featsep {
namespace {

namespace fs = std::filesystem;

using ::featsep::testing::ExpiredBudget;
using ::featsep::testing::MakeWorld;
using ::featsep::testing::MakeWorldReordered;
using ::featsep::testing::OutInFeatures;
using serve::DiskCacheEntry;
using serve::DiskResultCache;
using serve::EvalService;
using serve::ParseDiskCacheEntry;
using serve::SerializeDiskCacheEntry;
using serve::ServeOptions;
using serve::ServeStats;
using serve::StableCacheKeyDigest;

/// Unique per-process scratch directory, removed on destruction. ctest runs
/// each TEST as its own process, so the pid keeps parallel runs disjoint.
class TempDir {
 public:
  explicit TempDir(const std::string& tag) {
    std::uint64_t pid = 0;
#ifndef _WIN32
    pid = static_cast<std::uint64_t>(::getpid());
#endif
    path_ = fs::temp_directory_path() / (tag + "-" + std::to_string(pid));
    std::error_code ec;
    fs::remove_all(path_, ec);
    fs::create_directories(path_);
  }
  ~TempDir() {
    std::error_code ec;
    fs::remove_all(path_, ec);
  }
  std::string str() const { return path_.string(); }
  const fs::path& path() const { return path_; }

 private:
  fs::path path_;
};

std::string ReadFile(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(in), {});
}

void WriteFile(const fs::path& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out << bytes;
}

TEST(StableKeyTest, GoldenValueIsPinnedForever) {
  // The stable key identity names on-disk entries and buckets the in-memory
  // LRU; like Database::ContentDigest() it must never change for given
  // inputs. Do not update this constant — fix the hash instead.
  EXPECT_EQ(StableCacheKeyDigest(0x0123456789abcdefULL, "q(x) :- E(x,y)"),
            0xfcc293d3192e5cc5ULL);
  // Distinct digests and distinct features produce distinct keys.
  EXPECT_NE(StableCacheKeyDigest(1, "f"), StableCacheKeyDigest(2, "f"));
  EXPECT_NE(StableCacheKeyDigest(1, "f"), StableCacheKeyDigest(1, "g"));
}

TEST(DiskCacheEntryTest, SerializeParseRoundTrip) {
  std::string bytes = SerializeDiskCacheEntry(
      0xfeedULL, "q(x) :- E(x,y)", {"zeta", "alpha", "mid"});
  Result<DiskCacheEntry> entry = ParseDiskCacheEntry(bytes);
  ASSERT_TRUE(entry.ok()) << entry.error().message();
  EXPECT_EQ(entry.value().content_digest, 0xfeedULL);
  EXPECT_EQ(entry.value().feature, "q(x) :- E(x,y)");
  // Canonical order on disk: sorted, whatever order Store was handed.
  EXPECT_EQ(entry.value().selected,
            (std::vector<std::string>{"alpha", "mid", "zeta"}));
}

TEST(DiskCacheEntryTest, EntityNamesMayContainAnything) {
  // Length-prefixed names survive spaces and newlines.
  std::string bytes = SerializeDiskCacheEntry(
      7, "f", {"a b", "with\nnewline", "13 digits lead"});
  Result<DiskCacheEntry> entry = ParseDiskCacheEntry(bytes);
  ASSERT_TRUE(entry.ok()) << entry.error().message();
  EXPECT_EQ(entry.value().selected.size(), 3u);
}

TEST(DiskCacheEntryTest, EveryTruncationIsRejected) {
  std::string bytes = SerializeDiskCacheEntry(42, "feat", {"e1", "e2"});
  for (std::size_t len = 0; len < bytes.size(); ++len) {
    EXPECT_FALSE(ParseDiskCacheEntry(bytes.substr(0, len)).ok())
        << "prefix of length " << len << " parsed";
  }
  EXPECT_TRUE(ParseDiskCacheEntry(bytes).ok());
  // Trailing garbage after the checksum is also corruption.
  EXPECT_FALSE(ParseDiskCacheEntry(bytes + "x").ok());
}

TEST(DiskCacheEntryTest, EverySingleByteFlipBreaksTheChecksum) {
  std::string bytes = SerializeDiskCacheEntry(42, "feat", {"e1"});
  for (std::size_t i = 0; i < bytes.size(); ++i) {
    std::string mutated = bytes;
    mutated[i] ^= 0x01;
    EXPECT_FALSE(ParseDiskCacheEntry(mutated).ok())
        << "flip at offset " << i << " parsed";
  }
}

TEST(DiskResultCacheTest, StoreThenLoad) {
  TempDir dir("featsep-dc-roundtrip");
  DiskResultCache cache(dir.str());
  EXPECT_FALSE(cache.Load(1, "f").has_value());
  EXPECT_TRUE(cache.Store(1, "f", {"b", "a"}));
  auto names = cache.Load(1, "f");
  ASSERT_TRUE(names.has_value());
  EXPECT_EQ(*names, (std::vector<std::string>{"a", "b"}));
  // A different key misses without disturbing the stored entry.
  EXPECT_FALSE(cache.Load(2, "f").has_value());
  EXPECT_FALSE(cache.Load(1, "g").has_value());
  EXPECT_EQ(cache.stats().hits, 1u);
  EXPECT_EQ(cache.stats().misses, 3u);
  EXPECT_EQ(cache.stats().writes, 1u);
}

TEST(DiskResultCacheTest, EntriesSurviveProcessRestart) {
  // Simulated restart: a brand-new cache object (fresh stats, fresh
  // everything) over the same directory serves the entry.
  TempDir dir("featsep-dc-restart");
  { DiskResultCache(dir.str()).Store(9, "f", {"e"}); }
  DiskResultCache reopened(dir.str());
  auto names = reopened.Load(9, "f");
  ASSERT_TRUE(names.has_value());
  EXPECT_EQ(*names, std::vector<std::string>{"e"});
}

TEST(DiskResultCacheTest, CorruptEntryIsDroppedAndDeletedNeverTrusted) {
  TempDir dir("featsep-dc-corrupt");
  DiskResultCache cache(dir.str());
  ASSERT_TRUE(cache.Store(5, "f", {"a"}));

  // Find the entry file and truncate it mid-payload.
  fs::path entry_path;
  for (const auto& it : fs::directory_iterator(dir.path())) {
    if (it.path().extension() == ".fse") entry_path = it.path();
  }
  ASSERT_FALSE(entry_path.empty());
  std::string bytes = ReadFile(entry_path);
  WriteFile(entry_path, bytes.substr(0, bytes.size() / 2));

  EXPECT_FALSE(cache.Load(5, "f").has_value());
  EXPECT_EQ(cache.stats().corrupt_dropped, 1u);
  EXPECT_FALSE(fs::exists(entry_path)) << "corrupt entry not deleted";

  // The slot is reusable: a fresh Store replaces it with a good entry.
  ASSERT_TRUE(cache.Store(5, "f", {"a"}));
  EXPECT_TRUE(cache.Load(5, "f").has_value());
}

TEST(DiskResultCacheTest, VersionMismatchIsIgnoredButPreserved) {
  TempDir dir("featsep-dc-version");
  DiskResultCache cache(dir.str());
  ASSERT_TRUE(cache.Store(5, "f", {"a"}));
  fs::path entry_path;
  for (const auto& it : fs::directory_iterator(dir.path())) {
    if (it.path().extension() == ".fse") entry_path = it.path();
  }
  ASSERT_FALSE(entry_path.empty());
  // A future format version: maybe written by a newer binary sharing the
  // directory. It must be a miss — but never deleted.
  WriteFile(entry_path, "featsep-result-cache 999\nwho knows what follows\n");

  EXPECT_FALSE(cache.Load(5, "f").has_value());
  EXPECT_EQ(cache.stats().version_dropped, 1u);
  EXPECT_EQ(cache.stats().corrupt_dropped, 0u);
  EXPECT_TRUE(fs::exists(entry_path)) << "foreign-version entry deleted";
}

TEST(DiskResultCacheTest, KeyCollisionKeepsResidentEntry) {
  TempDir dir("featsep-dc-collide");
  DiskResultCache cache(dir.str());
  ASSERT_TRUE(cache.Store(5, "f", {"a"}));
  // Masquerade the valid entry under a different key's file name: the
  // payload spells its true key, so the reader refuses to serve it.
  fs::path entry_path;
  for (const auto& it : fs::directory_iterator(dir.path())) {
    if (it.path().extension() == ".fse") entry_path = it.path();
  }
  const std::string bytes = ReadFile(entry_path);
  DiskResultCache other(dir.str());
  other.Store(6, "g", {"b"});
  fs::path other_path;
  for (const auto& it : fs::directory_iterator(dir.path())) {
    if (it.path().extension() == ".fse" && it.path() != entry_path) {
      other_path = it.path();
    }
  }
  ASSERT_FALSE(other_path.empty());
  WriteFile(other_path, bytes);  // (6, "g")'s file now holds (5, "f").

  EXPECT_FALSE(other.Load(6, "g").has_value());
  EXPECT_EQ(other.stats().key_mismatch_dropped, 1u);
}

// ---------------------------------------------------------------------------
// Sweep / Remove: the disk tier's size-bounded GC.

TEST(DiskResultCacheTest, RemoveDeletesTheEntry) {
  TempDir dir("featsep-dc-remove");
  DiskResultCache cache(dir.str());
  ASSERT_TRUE(cache.Store(5, "f", {"a"}));
  EXPECT_TRUE(cache.Remove(5, "f"));
  EXPECT_FALSE(cache.Load(5, "f").has_value());
  EXPECT_EQ(cache.stats().removed, 1u);
  // Removing what is not there reports false without counting.
  EXPECT_FALSE(cache.Remove(5, "f"));
  EXPECT_EQ(cache.stats().removed, 1u);
}

TEST(DiskResultCacheTest, SweepUnderLimitIsANoOp) {
  TempDir dir("featsep-dc-sweep-under");
  DiskResultCache cache(dir.str());
  ASSERT_TRUE(cache.Store(1, "f", {"a"}));
  ASSERT_TRUE(cache.Store(2, "g", {"b"}));
  serve::DiskSweepResult result = cache.Sweep(1 << 20);
  EXPECT_EQ(result.entries_removed, 0u);
  EXPECT_EQ(result.bytes_before, result.bytes_after);
  EXPECT_EQ(cache.stats().swept, 0u);
  EXPECT_TRUE(cache.Load(1, "f").has_value());
  EXPECT_TRUE(cache.Load(2, "g").has_value());
}

TEST(DiskResultCacheTest, SweepEvictsOldestMtimeFirst) {
  TempDir dir("featsep-dc-sweep-order");
  DiskResultCache cache(dir.str());
  ASSERT_TRUE(cache.Store(1, "old", {"a"}));
  ASSERT_TRUE(cache.Store(2, "mid", {"b"}));
  ASSERT_TRUE(cache.Store(3, "new", {"c"}));
  // Pin the age order explicitly — filesystem timestamps are too coarse to
  // trust the three Stores above to land on distinct ticks.
  const auto now = fs::file_time_type::clock::now();
  for (const auto& it : fs::directory_iterator(dir.path())) {
    if (it.path().extension() != ".fse") continue;
    Result<DiskCacheEntry> entry = ParseDiskCacheEntry(ReadFile(it.path()));
    ASSERT_TRUE(entry.ok());
    fs::last_write_time(
        it.path(),
        now - std::chrono::hours(
                  entry.value().content_digest == 1
                      ? 3
                      : entry.value().content_digest == 2 ? 2 : 1));
  }
  // One entry's worth of budget: the two oldest go, the newest survives.
  std::uintmax_t one_entry = 0;
  for (const auto& it : fs::directory_iterator(dir.path())) {
    if (it.path().extension() == ".fse") {
      one_entry = std::max(one_entry, fs::file_size(it.path()));
    }
  }
  serve::DiskSweepResult result = cache.Sweep(one_entry);
  EXPECT_EQ(result.entries_removed, 2u);
  EXPECT_LE(result.bytes_after, one_entry);
  EXPECT_EQ(cache.stats().swept, 2u);
  EXPECT_FALSE(cache.Load(1, "old").has_value());
  EXPECT_FALSE(cache.Load(2, "mid").has_value());
  EXPECT_TRUE(cache.Load(3, "new").has_value());
}

TEST(DiskResultCacheTest, SweepCountsCorruptEntriesAndDeletesThem) {
  // Sweep is size + mtime only — it never parses. A corrupt .fse file is
  // just bytes toward the limit, counted and deleted like any entry.
  TempDir dir("featsep-dc-sweep-corrupt");
  DiskResultCache cache(dir.str());
  ASSERT_TRUE(cache.Store(1, "f", {"a"}));
  WriteFile(dir.path() / "deadbeefdeadbeef.fse", "not a valid entry");
  serve::DiskSweepResult result = cache.Sweep(0);
  EXPECT_EQ(result.entries_removed, 2u);
  EXPECT_EQ(result.bytes_after, 0u);
  std::size_t remaining = 0;
  for (const auto& it : fs::directory_iterator(dir.path())) {
    if (it.path().extension() == ".fse") ++remaining;
  }
  EXPECT_EQ(remaining, 0u);
}

TEST(EvalServiceDiskTest, OpportunisticSweepHonorsTheByteLimit) {
  TempDir dir("featsep-svc-sweep");
  ServeOptions options;
  options.cache_dir = dir.str();
  options.disk_cache_max_bytes = 1;  // Tighter than any single entry.
  Database db = MakeWorld();
  Statistic statistic(OutInFeatures());
  EvalService service(options);
  std::vector<FeatureVector> matrix = service.Matrix(statistic.features(), db);
  EXPECT_EQ(matrix, statistic.Matrix(db));  // Answers unaffected by GC.
  std::uintmax_t bytes = 0;
  for (const auto& it : fs::directory_iterator(dir.path())) {
    if (it.path().extension() == ".fse") bytes += fs::file_size(it.path());
  }
  EXPECT_LE(bytes, options.disk_cache_max_bytes)
      << "write-behind left the disk tier over its GC limit";
}

// ---------------------------------------------------------------------------
// EvalService integration: the durable tier under the LRU.

TEST(EvalServiceDiskTest, ColdRunRestartWarmRunBitIdentical) {
  TempDir dir("featsep-svc-restart");
  Database db = MakeWorld();
  Statistic statistic(OutInFeatures());
  const std::vector<FeatureVector> serial = statistic.Matrix(db);

  ServeOptions options;
  options.cache_dir = dir.str();
  std::vector<FeatureVector> cold;
  {
    EvalService service(options);
    cold = service.Matrix(statistic.features(), db);
    ServeStats stats = service.stats();
    EXPECT_EQ(stats.disk_hits, 0u);
    EXPECT_EQ(stats.disk_writes, statistic.features().size());
    EXPECT_EQ(stats.features_evaluated, statistic.features().size());
  }  // Service destroyed: the "process" is gone, only the directory stays.

  EvalService restarted(options);
  std::vector<FeatureVector> warm = restarted.Matrix(statistic.features(), db);
  ServeStats stats = restarted.stats();
  EXPECT_EQ(stats.disk_hits, statistic.features().size());
  EXPECT_EQ(stats.features_evaluated, 0u) << "kernel ran despite disk cache";
  EXPECT_EQ(warm, cold);
  EXPECT_EQ(warm, serial);
}

TEST(EvalServiceDiskTest, DiskEntriesTransferBetweenEqualContentDatabases) {
  // Entries are keyed by content digest and store entity *names*, so a
  // database with the same content but different interning order hits.
  TempDir dir("featsep-svc-transfer");
  ServeOptions options;
  options.cache_dir = dir.str();
  Database a = MakeWorld();
  Database b = MakeWorldReordered();
  Statistic statistic(OutInFeatures());
  std::vector<FeatureVector> on_a;
  {
    EvalService service(options);
    on_a = service.Matrix(statistic.features(), a);
  }
  EvalService service(options);
  std::vector<FeatureVector> on_b = service.Matrix(statistic.features(), b);
  EXPECT_EQ(service.stats().disk_hits, statistic.features().size());
  EXPECT_EQ(service.stats().features_evaluated, 0u);
  EXPECT_EQ(on_b, statistic.Matrix(b));
}

TEST(EvalServiceDiskTest, CorruptDirectoryIsNotFatal) {
  TempDir dir("featsep-svc-corrupt");
  ServeOptions options;
  options.cache_dir = dir.str();
  Database db = MakeWorld();
  Statistic statistic(OutInFeatures());
  {
    EvalService service(options);
    service.Matrix(statistic.features(), db);
  }
  // Vandalize every entry.
  for (const auto& it : fs::directory_iterator(dir.path())) {
    if (it.path().extension() == ".fse") WriteFile(it.path(), "garbage");
  }
  EvalService service(options);
  std::vector<FeatureVector> matrix = service.Matrix(statistic.features(), db);
  EXPECT_EQ(matrix, statistic.Matrix(db));
  ServeStats stats = service.stats();
  EXPECT_EQ(stats.disk_hits, 0u);
  EXPECT_EQ(stats.disk_drops, statistic.features().size());
  EXPECT_EQ(stats.features_evaluated, statistic.features().size());
}

TEST(EvalServiceDiskTest, AbortedEvaluationsAreNeverPersisted) {
  // The PR 5 rule extended to disk: an expired budget yields nullptr
  // answers and must leave NOTHING durable behind.
  TempDir dir("featsep-svc-aborted");
  ServeOptions options;
  options.cache_dir = dir.str();
  Database db = MakeWorld();
  EvalService service(options);
  ExecutionBudget budget = ExpiredBudget();
  auto answers = service.TryResolve(OutInFeatures(), db, &budget);
  for (const auto& answer : answers) EXPECT_EQ(answer, nullptr);
  EXPECT_EQ(service.stats().disk_writes, 0u);
  std::size_t entries = 0;
  for (const auto& it : fs::directory_iterator(dir.path())) {
    if (it.path().extension() == ".fse") ++entries;
  }
  EXPECT_EQ(entries, 0u) << "aborted evaluation left a durable entry";
}

}  // namespace
}  // namespace featsep
