#include "serve/disk_cache.h"

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#ifndef _WIN32
#include <unistd.h>
#endif

#include "core/statistic.h"
#include "serve/eval_service.h"
#include "test_util.h"
#include "util/fs_env.h"

namespace featsep {
namespace {

namespace fs = std::filesystem;

using ::featsep::testing::ExpiredBudget;
using ::featsep::testing::MakeWorld;
using ::featsep::testing::MakeWorldReordered;
using ::featsep::testing::OutInFeatures;
using serve::DiskCacheEntry;
using serve::DiskCacheOptions;
using serve::DiskLoadResult;
using serve::DiskLoadStatus;
using serve::DiskResultCache;
using serve::EvalService;
using serve::ParseDiskCacheEntry;
using serve::SerializeDiskCacheEntry;
using serve::ServeOptions;
using serve::ServeStats;
using serve::StableCacheKeyDigest;

/// Unique per-process scratch directory, removed on destruction. ctest runs
/// each TEST as its own process, so the pid keeps parallel runs disjoint.
class TempDir {
 public:
  explicit TempDir(const std::string& tag) {
    std::uint64_t pid = 0;
#ifndef _WIN32
    pid = static_cast<std::uint64_t>(::getpid());
#endif
    path_ = fs::temp_directory_path() / (tag + "-" + std::to_string(pid));
    std::error_code ec;
    fs::remove_all(path_, ec);
    fs::create_directories(path_);
  }
  ~TempDir() {
    std::error_code ec;
    fs::remove_all(path_, ec);
  }
  std::string str() const { return path_.string(); }
  const fs::path& path() const { return path_; }

 private:
  fs::path path_;
};

std::string ReadFile(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(in), {});
}

void WriteFile(const fs::path& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out << bytes;
}

TEST(StableKeyTest, GoldenValueIsPinnedForever) {
  // The stable key identity names on-disk entries and buckets the in-memory
  // LRU; like Database::ContentDigest() it must never change for given
  // inputs. Do not update this constant — fix the hash instead.
  EXPECT_EQ(StableCacheKeyDigest(0x0123456789abcdefULL, "q(x) :- E(x,y)"),
            0xfcc293d3192e5cc5ULL);
  // Distinct digests and distinct features produce distinct keys.
  EXPECT_NE(StableCacheKeyDigest(1, "f"), StableCacheKeyDigest(2, "f"));
  EXPECT_NE(StableCacheKeyDigest(1, "f"), StableCacheKeyDigest(1, "g"));
}

TEST(DiskCacheEntryTest, SerializeParseRoundTrip) {
  std::string bytes = SerializeDiskCacheEntry(
      0xfeedULL, "q(x) :- E(x,y)", {"zeta", "alpha", "mid"});
  Result<DiskCacheEntry> entry = ParseDiskCacheEntry(bytes);
  ASSERT_TRUE(entry.ok()) << entry.error().message();
  EXPECT_EQ(entry.value().content_digest, 0xfeedULL);
  EXPECT_EQ(entry.value().feature, "q(x) :- E(x,y)");
  // Canonical order on disk: sorted, whatever order Store was handed.
  EXPECT_EQ(entry.value().selected,
            (std::vector<std::string>{"alpha", "mid", "zeta"}));
}

TEST(DiskCacheEntryTest, EntityNamesMayContainAnything) {
  // Length-prefixed names survive spaces and newlines.
  std::string bytes = SerializeDiskCacheEntry(
      7, "f", {"a b", "with\nnewline", "13 digits lead"});
  Result<DiskCacheEntry> entry = ParseDiskCacheEntry(bytes);
  ASSERT_TRUE(entry.ok()) << entry.error().message();
  EXPECT_EQ(entry.value().selected.size(), 3u);
}

TEST(DiskCacheEntryTest, EveryTruncationIsRejected) {
  std::string bytes = SerializeDiskCacheEntry(42, "feat", {"e1", "e2"});
  for (std::size_t len = 0; len < bytes.size(); ++len) {
    EXPECT_FALSE(ParseDiskCacheEntry(bytes.substr(0, len)).ok())
        << "prefix of length " << len << " parsed";
  }
  EXPECT_TRUE(ParseDiskCacheEntry(bytes).ok());
  // Trailing garbage after the checksum is also corruption.
  EXPECT_FALSE(ParseDiskCacheEntry(bytes + "x").ok());
}

TEST(DiskCacheEntryTest, EverySingleByteFlipBreaksTheChecksum) {
  std::string bytes = SerializeDiskCacheEntry(42, "feat", {"e1"});
  for (std::size_t i = 0; i < bytes.size(); ++i) {
    std::string mutated = bytes;
    mutated[i] ^= 0x01;
    EXPECT_FALSE(ParseDiskCacheEntry(mutated).ok())
        << "flip at offset " << i << " parsed";
  }
}

TEST(DiskResultCacheTest, StoreThenLoad) {
  TempDir dir("featsep-dc-roundtrip");
  DiskResultCache cache(dir.str());
  EXPECT_FALSE(cache.Load(1, "f").has_value());
  EXPECT_TRUE(cache.Store(1, "f", {"b", "a"}));
  auto names = cache.Load(1, "f");
  ASSERT_TRUE(names.has_value());
  EXPECT_EQ(*names, (std::vector<std::string>{"a", "b"}));
  // A different key misses without disturbing the stored entry.
  EXPECT_FALSE(cache.Load(2, "f").has_value());
  EXPECT_FALSE(cache.Load(1, "g").has_value());
  EXPECT_EQ(cache.stats().hits, 1u);
  EXPECT_EQ(cache.stats().misses, 3u);
  EXPECT_EQ(cache.stats().writes, 1u);
}

TEST(DiskResultCacheTest, EntriesSurviveProcessRestart) {
  // Simulated restart: a brand-new cache object (fresh stats, fresh
  // everything) over the same directory serves the entry.
  TempDir dir("featsep-dc-restart");
  { DiskResultCache(dir.str()).Store(9, "f", {"e"}); }
  DiskResultCache reopened(dir.str());
  auto names = reopened.Load(9, "f");
  ASSERT_TRUE(names.has_value());
  EXPECT_EQ(*names, std::vector<std::string>{"e"});
}

TEST(DiskResultCacheTest, CorruptEntryIsDroppedAndDeletedNeverTrusted) {
  TempDir dir("featsep-dc-corrupt");
  DiskResultCache cache(dir.str());
  ASSERT_TRUE(cache.Store(5, "f", {"a"}));

  // Find the entry file and truncate it mid-payload.
  fs::path entry_path;
  for (const auto& it : fs::directory_iterator(dir.path())) {
    if (it.path().extension() == ".fse") entry_path = it.path();
  }
  ASSERT_FALSE(entry_path.empty());
  std::string bytes = ReadFile(entry_path);
  WriteFile(entry_path, bytes.substr(0, bytes.size() / 2));

  EXPECT_FALSE(cache.Load(5, "f").has_value());
  EXPECT_EQ(cache.stats().corrupt_dropped, 1u);
  EXPECT_FALSE(fs::exists(entry_path)) << "corrupt entry not deleted";

  // The slot is reusable: a fresh Store replaces it with a good entry.
  ASSERT_TRUE(cache.Store(5, "f", {"a"}));
  EXPECT_TRUE(cache.Load(5, "f").has_value());
}

TEST(DiskResultCacheTest, VersionMismatchIsIgnoredButPreserved) {
  TempDir dir("featsep-dc-version");
  DiskResultCache cache(dir.str());
  ASSERT_TRUE(cache.Store(5, "f", {"a"}));
  fs::path entry_path;
  for (const auto& it : fs::directory_iterator(dir.path())) {
    if (it.path().extension() == ".fse") entry_path = it.path();
  }
  ASSERT_FALSE(entry_path.empty());
  // A future format version: maybe written by a newer binary sharing the
  // directory. It must be a miss — but never deleted.
  WriteFile(entry_path, "featsep-result-cache 999\nwho knows what follows\n");

  EXPECT_FALSE(cache.Load(5, "f").has_value());
  EXPECT_EQ(cache.stats().version_dropped, 1u);
  EXPECT_EQ(cache.stats().corrupt_dropped, 0u);
  EXPECT_TRUE(fs::exists(entry_path)) << "foreign-version entry deleted";
}

TEST(DiskResultCacheTest, KeyCollisionKeepsResidentEntry) {
  TempDir dir("featsep-dc-collide");
  DiskResultCache cache(dir.str());
  ASSERT_TRUE(cache.Store(5, "f", {"a"}));
  // Masquerade the valid entry under a different key's file name: the
  // payload spells its true key, so the reader refuses to serve it.
  fs::path entry_path;
  for (const auto& it : fs::directory_iterator(dir.path())) {
    if (it.path().extension() == ".fse") entry_path = it.path();
  }
  const std::string bytes = ReadFile(entry_path);
  DiskResultCache other(dir.str());
  other.Store(6, "g", {"b"});
  fs::path other_path;
  for (const auto& it : fs::directory_iterator(dir.path())) {
    if (it.path().extension() == ".fse" && it.path() != entry_path) {
      other_path = it.path();
    }
  }
  ASSERT_FALSE(other_path.empty());
  WriteFile(other_path, bytes);  // (6, "g")'s file now holds (5, "f").

  EXPECT_FALSE(other.Load(6, "g").has_value());
  EXPECT_EQ(other.stats().key_mismatch_dropped, 1u);
}

// ---------------------------------------------------------------------------
// Sweep / Remove: the disk tier's size-bounded GC.

TEST(DiskResultCacheTest, RemoveDeletesTheEntry) {
  TempDir dir("featsep-dc-remove");
  DiskResultCache cache(dir.str());
  ASSERT_TRUE(cache.Store(5, "f", {"a"}));
  EXPECT_TRUE(cache.Remove(5, "f"));
  EXPECT_FALSE(cache.Load(5, "f").has_value());
  EXPECT_EQ(cache.stats().removed, 1u);
  // Removing what is not there reports false without counting.
  EXPECT_FALSE(cache.Remove(5, "f"));
  EXPECT_EQ(cache.stats().removed, 1u);
}

TEST(DiskResultCacheTest, SweepUnderLimitIsANoOp) {
  TempDir dir("featsep-dc-sweep-under");
  DiskResultCache cache(dir.str());
  ASSERT_TRUE(cache.Store(1, "f", {"a"}));
  ASSERT_TRUE(cache.Store(2, "g", {"b"}));
  serve::DiskSweepResult result = cache.Sweep(1 << 20);
  EXPECT_EQ(result.entries_removed, 0u);
  EXPECT_EQ(result.bytes_before, result.bytes_after);
  EXPECT_EQ(cache.stats().swept, 0u);
  EXPECT_TRUE(cache.Load(1, "f").has_value());
  EXPECT_TRUE(cache.Load(2, "g").has_value());
}

TEST(DiskResultCacheTest, SweepEvictsOldestMtimeFirst) {
  TempDir dir("featsep-dc-sweep-order");
  DiskResultCache cache(dir.str());
  ASSERT_TRUE(cache.Store(1, "old", {"a"}));
  ASSERT_TRUE(cache.Store(2, "mid", {"b"}));
  ASSERT_TRUE(cache.Store(3, "new", {"c"}));
  // Pin the age order explicitly — filesystem timestamps are too coarse to
  // trust the three Stores above to land on distinct ticks.
  const auto now = fs::file_time_type::clock::now();
  for (const auto& it : fs::directory_iterator(dir.path())) {
    if (it.path().extension() != ".fse") continue;
    Result<DiskCacheEntry> entry = ParseDiskCacheEntry(ReadFile(it.path()));
    ASSERT_TRUE(entry.ok());
    fs::last_write_time(
        it.path(),
        now - std::chrono::hours(
                  entry.value().content_digest == 1
                      ? 3
                      : entry.value().content_digest == 2 ? 2 : 1));
  }
  // One entry's worth of budget: the two oldest go, the newest survives.
  std::uintmax_t one_entry = 0;
  for (const auto& it : fs::directory_iterator(dir.path())) {
    if (it.path().extension() == ".fse") {
      one_entry = std::max(one_entry, fs::file_size(it.path()));
    }
  }
  serve::DiskSweepResult result = cache.Sweep(one_entry);
  EXPECT_EQ(result.entries_removed, 2u);
  EXPECT_LE(result.bytes_after, one_entry);
  EXPECT_EQ(cache.stats().swept, 2u);
  EXPECT_FALSE(cache.Load(1, "old").has_value());
  EXPECT_FALSE(cache.Load(2, "mid").has_value());
  EXPECT_TRUE(cache.Load(3, "new").has_value());
}

TEST(DiskResultCacheTest, SweepCountsCorruptEntriesAndDeletesThem) {
  // Sweep is size + mtime only — it never parses. A corrupt .fse file is
  // just bytes toward the limit, counted and deleted like any entry.
  TempDir dir("featsep-dc-sweep-corrupt");
  DiskResultCache cache(dir.str());
  ASSERT_TRUE(cache.Store(1, "f", {"a"}));
  WriteFile(dir.path() / "deadbeefdeadbeef.fse", "not a valid entry");
  serve::DiskSweepResult result = cache.Sweep(0);
  EXPECT_EQ(result.entries_removed, 2u);
  EXPECT_EQ(result.bytes_after, 0u);
  std::size_t remaining = 0;
  for (const auto& it : fs::directory_iterator(dir.path())) {
    if (it.path().extension() == ".fse") ++remaining;
  }
  EXPECT_EQ(remaining, 0u);
}

TEST(EvalServiceDiskTest, OpportunisticSweepHonorsTheByteLimit) {
  TempDir dir("featsep-svc-sweep");
  ServeOptions options;
  options.cache_dir = dir.str();
  options.disk_cache_max_bytes = 1;  // Tighter than any single entry.
  Database db = MakeWorld();
  Statistic statistic(OutInFeatures());
  EvalService service(options);
  std::vector<FeatureVector> matrix = service.Matrix(statistic.features(), db);
  EXPECT_EQ(matrix, statistic.Matrix(db));  // Answers unaffected by GC.
  std::uintmax_t bytes = 0;
  for (const auto& it : fs::directory_iterator(dir.path())) {
    if (it.path().extension() == ".fse") bytes += fs::file_size(it.path());
  }
  EXPECT_LE(bytes, options.disk_cache_max_bytes)
      << "write-behind left the disk tier over its GC limit";
}

// ---------------------------------------------------------------------------
// Fault injection: retries, I/O-error reporting, tmp GC, crash-mid-publish.

TEST(DiskResultCacheTest, TmpGcOnOpenCollectsStaleOrphansOnly) {
  TempDir dir("featsep-dc-tmpgc");
  { DiskResultCache warmup(dir.str()); }  // Creates tmp/.
  const fs::path orphan = dir.path() / "tmp" / "orphan.123.0.tmp";
  const fs::path fresh = dir.path() / "tmp" / "fresh.456.0.tmp";
  WriteFile(orphan, "partial bytes a crash left behind");
  // Backdate past the default hour-long GC age.
  fs::last_write_time(
      orphan, fs::file_time_type::clock::now() - std::chrono::hours(2));
  WriteFile(fresh, "another process's live publish");

  DiskResultCache cache(dir.str());  // Defaults: GC on open, hour age.
  EXPECT_EQ(cache.stats().tmp_collected, 1u);
  EXPECT_FALSE(fs::exists(orphan)) << "stale orphan survived startup GC";
  EXPECT_TRUE(fs::exists(fresh)) << "a possibly-live publish was collected";

  // An explicit zero-age pass collects everything left.
  EXPECT_EQ(cache.CollectStaleTmp(std::chrono::milliseconds(0)), 1u);
  EXPECT_EQ(cache.stats().tmp_collected, 2u);
  EXPECT_FALSE(fs::exists(fresh));
}

TEST(DiskResultCacheTest, StoreRetriesTransientFaultThenSucceeds) {
  TempDir dir("featsep-dc-retry-store");
  FaultFsEnv env(FaultFsOptions{});
  DiskCacheOptions options;
  options.env = &env;
  options.retry.max_attempts = 2;
  DiskResultCache cache(dir.str(), options);

  env.FailNext(FsOp::kWrite, 1);
  EXPECT_TRUE(cache.Store(1, "f", {"a"}));
  EXPECT_EQ(cache.stats().store_retries, 1u);
  EXPECT_EQ(cache.stats().write_failures, 0u);
  EXPECT_EQ(cache.stats().writes, 1u);
  auto names = cache.Load(1, "f");
  ASSERT_TRUE(names.has_value());
  EXPECT_EQ(*names, std::vector<std::string>{"a"});
}

TEST(DiskResultCacheTest, StoreExhaustedRetriesCountsWriteFailure) {
  TempDir dir("featsep-dc-retry-exhaust");
  FaultFsEnv env(FaultFsOptions{});
  DiskCacheOptions options;
  options.env = &env;
  options.retry.max_attempts = 2;
  DiskResultCache cache(dir.str(), options);

  env.FailNext(FsOp::kWrite, 2);  // Both attempts fault.
  EXPECT_FALSE(cache.Store(1, "f", {"a"}));
  EXPECT_EQ(cache.stats().write_failures, 1u);
  EXPECT_EQ(cache.stats().store_retries, 1u);
  EXPECT_EQ(cache.stats().writes, 0u);
  // The failure is not sticky: once the fault clears, the key stores fine.
  EXPECT_TRUE(cache.Store(1, "f", {"a"}));
  EXPECT_TRUE(cache.Load(1, "f").has_value());
}

TEST(DiskResultCacheTest, LoadIoErrorIsDistinctFromMiss) {
  TempDir dir("featsep-dc-ioerror");
  FaultFsEnv env(FaultFsOptions{});
  DiskCacheOptions options;
  options.env = &env;
  options.retry.max_attempts = 2;
  DiskResultCache cache(dir.str(), options);

  // A sick disk: retries exhausted on a read fault.
  env.FailNext(FsOp::kRead, 2);
  DiskLoadResult faulted = cache.LoadEntry(1, "f");
  EXPECT_EQ(faulted.status, DiskLoadStatus::kIoError);
  EXPECT_TRUE(faulted.io_error());
  EXPECT_EQ(cache.stats().io_errors, 1u);
  EXPECT_EQ(cache.stats().load_retries, 1u);

  // A cold cache: settled on the first attempt, never an io_error.
  DiskLoadResult missed = cache.LoadEntry(1, "f");
  EXPECT_EQ(missed.status, DiskLoadStatus::kMiss);
  EXPECT_FALSE(missed.io_error());
  EXPECT_EQ(cache.stats().io_errors, 1u);

  // A transient read fault on a present entry: retried into a hit.
  ASSERT_TRUE(cache.Store(1, "f", {"a"}));
  env.FailNext(FsOp::kRead, 1);
  DiskLoadResult recovered = cache.LoadEntry(1, "f");
  EXPECT_TRUE(recovered.hit());
  EXPECT_EQ(cache.stats().load_retries, 2u);
}

TEST(DiskResultCacheTest, SweepReportsPartialScanErrors) {
  TempDir dir("featsep-dc-sweep-partial");
  FaultFsOptions fault;
  fault.partial_list_chance = 1.0;
  FaultFsEnv env(fault);
  DiskCacheOptions options;
  options.env = &env;
  DiskResultCache cache(dir.str(), options);
  for (std::uint64_t digest = 1; digest <= 4; ++digest) {
    ASSERT_TRUE(cache.Store(digest, "f", {"a"}));
  }
  env.FailNext(FsOp::kList, 1);
  serve::DiskSweepResult result = cache.Sweep(1 << 20);
  EXPECT_GT(result.scan_errors, 0u)
      << "a truncated scan must not report itself complete";
  EXPECT_EQ(cache.stats().scan_errors, result.scan_errors);
}

TEST(DiskResultCacheTest, CrashMidPublishIsInvisibleAfterRecovery) {
  // Kill the "process" at every I/O point of a store (with torn writes on)
  // and restart over the same directory: the entry is either fully absent
  // or fully present — never half-visible — and recovery GC leaves no tmp
  // orphans behind.
  TempDir dir("featsep-dc-crash");
  for (std::uint64_t crash_at = 1; crash_at <= 6; ++crash_at) {
    const fs::path sub = dir.path() / ("crash-" + std::to_string(crash_at));
    fs::create_directories(sub);
    {
      FaultFsOptions fault;
      fault.seed = crash_at * 1000 + 7;
      fault.torn_write_chance = 1.0;
      fault.crash_after_ops = crash_at;
      FaultFsEnv env(fault);
      DiskCacheOptions options;
      options.env = &env;
      options.tmp_gc_on_open = false;  // Land the crash inside the publish.
      DiskResultCache cache(sub.string(), options);
      cache.Store(1, "f", {"a", "b"});  // May die at any point inside.
    }
    // Restart: a fresh cache on the real filesystem, collecting tmp
    // orphans regardless of age.
    DiskCacheOptions recovery;
    recovery.tmp_gc_age = std::chrono::milliseconds(0);
    DiskResultCache reopened(sub.string(), recovery);
    DiskLoadResult result = reopened.LoadEntry(1, "f");
    ASSERT_TRUE(result.status == DiskLoadStatus::kMiss || result.hit())
        << "crash_at=" << crash_at << " left a half-visible entry";
    if (result.hit()) {
      EXPECT_EQ(result.selected, (std::vector<std::string>{"a", "b"}));
    }
    std::size_t tmp_files = 0;
    for (const auto& it : fs::directory_iterator(sub / "tmp")) {
      (void)it;
      ++tmp_files;
    }
    EXPECT_EQ(tmp_files, 0u) << "crash_at=" << crash_at << " orphaned tmp";
  }
}

// ---------------------------------------------------------------------------
// EvalService integration: the durable tier under the LRU.

TEST(EvalServiceDiskTest, ColdRunRestartWarmRunBitIdentical) {
  TempDir dir("featsep-svc-restart");
  Database db = MakeWorld();
  Statistic statistic(OutInFeatures());
  const std::vector<FeatureVector> serial = statistic.Matrix(db);

  ServeOptions options;
  options.cache_dir = dir.str();
  std::vector<FeatureVector> cold;
  {
    EvalService service(options);
    cold = service.Matrix(statistic.features(), db);
    ServeStats stats = service.stats();
    EXPECT_EQ(stats.disk_hits, 0u);
    EXPECT_EQ(stats.disk_writes, statistic.features().size());
    EXPECT_EQ(stats.features_evaluated, statistic.features().size());
  }  // Service destroyed: the "process" is gone, only the directory stays.

  EvalService restarted(options);
  std::vector<FeatureVector> warm = restarted.Matrix(statistic.features(), db);
  ServeStats stats = restarted.stats();
  EXPECT_EQ(stats.disk_hits, statistic.features().size());
  EXPECT_EQ(stats.features_evaluated, 0u) << "kernel ran despite disk cache";
  EXPECT_EQ(warm, cold);
  EXPECT_EQ(warm, serial);
}

TEST(EvalServiceDiskTest, DiskEntriesTransferBetweenEqualContentDatabases) {
  // Entries are keyed by content digest and store entity *names*, so a
  // database with the same content but different interning order hits.
  TempDir dir("featsep-svc-transfer");
  ServeOptions options;
  options.cache_dir = dir.str();
  Database a = MakeWorld();
  Database b = MakeWorldReordered();
  Statistic statistic(OutInFeatures());
  std::vector<FeatureVector> on_a;
  {
    EvalService service(options);
    on_a = service.Matrix(statistic.features(), a);
  }
  EvalService service(options);
  std::vector<FeatureVector> on_b = service.Matrix(statistic.features(), b);
  EXPECT_EQ(service.stats().disk_hits, statistic.features().size());
  EXPECT_EQ(service.stats().features_evaluated, 0u);
  EXPECT_EQ(on_b, statistic.Matrix(b));
}

TEST(EvalServiceDiskTest, CorruptDirectoryIsNotFatal) {
  TempDir dir("featsep-svc-corrupt");
  ServeOptions options;
  options.cache_dir = dir.str();
  Database db = MakeWorld();
  Statistic statistic(OutInFeatures());
  {
    EvalService service(options);
    service.Matrix(statistic.features(), db);
  }
  // Vandalize every entry.
  for (const auto& it : fs::directory_iterator(dir.path())) {
    if (it.path().extension() == ".fse") WriteFile(it.path(), "garbage");
  }
  EvalService service(options);
  std::vector<FeatureVector> matrix = service.Matrix(statistic.features(), db);
  EXPECT_EQ(matrix, statistic.Matrix(db));
  ServeStats stats = service.stats();
  EXPECT_EQ(stats.disk_hits, 0u);
  EXPECT_EQ(stats.disk_drops, statistic.features().size());
  EXPECT_EQ(stats.features_evaluated, statistic.features().size());
}

TEST(EvalServiceDiskTest, AbortedEvaluationsAreNeverPersisted) {
  // The PR 5 rule extended to disk: an expired budget yields nullptr
  // answers and must leave NOTHING durable behind.
  TempDir dir("featsep-svc-aborted");
  ServeOptions options;
  options.cache_dir = dir.str();
  Database db = MakeWorld();
  EvalService service(options);
  ExecutionBudget budget = ExpiredBudget();
  auto answers = service.TryResolve(OutInFeatures(), db, &budget);
  for (const auto& answer : answers) EXPECT_EQ(answer, nullptr);
  EXPECT_EQ(service.stats().disk_writes, 0u);
  std::size_t entries = 0;
  for (const auto& it : fs::directory_iterator(dir.path())) {
    if (it.path().extension() == ".fse") ++entries;
  }
  EXPECT_EQ(entries, 0u) << "aborted evaluation left a durable entry";
}

// ---------------------------------------------------------------------------
// The disk circuit breaker: a sick disk must degrade the durable tier to
// LRU+compute, never degrade answers.

TEST(EvalServiceBreakerTest, OpenBreakerShortCircuitsTheSickDisk) {
  TempDir dir("featsep-breaker-open");
  auto env = std::make_shared<FaultFsEnv>(FaultFsOptions{});
  ServeOptions options;
  options.cache_dir = dir.str();
  options.fs_env = env;
  options.disk_retry_attempts = 1;  // One attempt per op: clean counting.
  options.disk_retry_backoff = std::chrono::microseconds(0);
  options.breaker_failure_threshold = 1;
  options.breaker_probe_interval = std::chrono::hours(1);  // No probes here.
  Database db = MakeWorld();
  Statistic statistic(OutInFeatures());
  const std::vector<FeatureVector> serial = statistic.Matrix(db);

  EvalService service(options);
  EXPECT_EQ(service.disk_health(), serve::DiskHealth::kClosed);
  EXPECT_EQ(service.Matrix(statistic.features(), db), serial);
  EXPECT_EQ(service.disk_health(), serve::DiskHealth::kClosed);

  // The disk goes dark: the first faulted op trips the breaker, everything
  // after short-circuits, and the answers never notice.
  env->set_fail_chance(1.0);
  service.ClearCache();
  EXPECT_EQ(service.Matrix(statistic.features(), db), serial);
  EXPECT_EQ(service.disk_health(), serve::DiskHealth::kOpen);
  ServeStats stats = service.stats();
  EXPECT_EQ(stats.breaker_trips, 1u);
  EXPECT_GE(stats.breaker_short_circuits, 1u);
  EXPECT_EQ(stats.breaker_closes, 0u);

  // While open (and the probe interval far away), the disk is not touched
  // at all — that is the point of the breaker.
  const std::uint64_t attempts_when_open = env->stats().total_attempts;
  service.ClearCache();
  EXPECT_EQ(service.Matrix(statistic.features(), db), serial);
  EXPECT_EQ(env->stats().total_attempts, attempts_when_open)
      << "open breaker still sent operations to the sick disk";
}

TEST(EvalServiceBreakerTest, GracefulDegradationEndToEnd) {
  // The acceptance-criteria arc: healthy -> disk fails -> breaker opens and
  // requests keep serving bit-identically to the serial oracle -> faults
  // clear -> a half-open probe closes the breaker -> the disk tier resumes.
  TempDir dir("featsep-breaker-e2e");
  auto env = std::make_shared<FaultFsEnv>(FaultFsOptions{});
  ServeOptions options;
  options.cache_dir = dir.str();
  options.fs_env = env;
  options.disk_retry_attempts = 2;
  options.disk_retry_backoff = std::chrono::microseconds(0);
  options.breaker_failure_threshold = 2;
  options.breaker_probe_interval = std::chrono::milliseconds(0);
  Database db = MakeWorld();
  Statistic statistic(OutInFeatures());
  const std::vector<FeatureVector> serial = statistic.Matrix(db);

  // A no-disk, no-cache twin is the oracle for every phase.
  EvalService oracle{[] {
    ServeOptions serial_options;
    serial_options.cache_capacity = 0;
    return serial_options;
  }()};

  EvalService service(options);
  EXPECT_EQ(service.Matrix(statistic.features(), db),
            oracle.Matrix(statistic.features(), db));
  EXPECT_EQ(service.disk_health(), serve::DiskHealth::kClosed);

  env->set_fail_chance(1.0);
  for (int round = 0; round < 4; ++round) {
    service.ClearCache();
    EXPECT_EQ(service.Matrix(statistic.features(), db), serial)
        << "faulted round " << round << " degraded the answers";
  }
  ServeStats degraded = service.stats();
  EXPECT_GT(degraded.breaker_trips, 0u) << "breaker never opened";
  EXPECT_GT(degraded.disk_io_errors, 0u);

  // Faults clear; the zero-length probe interval lets the next operation
  // through as a half-open probe, which succeeds and closes the breaker.
  env->ClearFaults();
  service.ClearCache();
  EXPECT_EQ(service.Matrix(statistic.features(), db), serial);
  EXPECT_EQ(service.disk_health(), serve::DiskHealth::kClosed)
      << "breaker failed to close after the disk recovered";
  ServeStats recovered = service.stats();
  EXPECT_GT(recovered.breaker_closes, 0u);

  // The disk tier is genuinely back: entries stored after recovery are
  // served from disk on the next cold pass.
  service.ClearCache();
  const std::uint64_t hits_before = service.stats().disk_hits;
  EXPECT_EQ(service.Matrix(statistic.features(), db), serial);
  EXPECT_GT(service.stats().disk_hits, hits_before)
      << "recovered disk tier served no hits";
}

}  // namespace
}  // namespace featsep
