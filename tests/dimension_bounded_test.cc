#include "core/dimension_bounded.h"

#include <gtest/gtest.h>

#include "core/separability.h"
#include "test_util.h"

namespace featsep {
namespace {

using ::featsep::testing::AddEntity;
using ::featsep::testing::GraphSchema;
using ::featsep::testing::UnarySchema;

/// Example 6.2: D = {R(a), S(a), S(c)}, λ(a) = λ(b) = 1, λ(c) = -1.
std::shared_ptr<TrainingDatabase> Example62() {
  auto db = std::make_shared<Database>(UnarySchema());
  Value a = AddEntity(*db, "a");
  Value b = AddEntity(*db, "b");
  Value c = AddEntity(*db, "c");
  db->AddFact("R", {"a"});
  db->AddFact("S", {"a"});
  db->AddFact("S", {"c"});
  auto training = std::make_shared<TrainingDatabase>(db);
  training->SetLabel(a, kPositive);
  training->SetLabel(b, kPositive);
  training->SetLabel(c, kNegative);
  return training;
}

TEST(SepDimTest, Example62NeedsTwoFeatures) {
  // The paper's Example 6.2: not CQ-separable with one feature, separable
  // with two (namely R(x) and S(x)).
  auto training = Example62();
  QbeOracle oracle = MakeCqmQbeOracle(2);
  EXPECT_FALSE(DecideSepDim(*training, 1, oracle).separable);
  SepDimResult with_two = DecideSepDim(*training, 2, oracle);
  EXPECT_TRUE(with_two.separable);
  EXPECT_LE(with_two.feature_positive_sets.size(), 2u);
}

TEST(SepDimTest, CqOracleAgrees) {
  auto training = Example62();
  QbeOracle oracle = MakeCqQbeOracle();
  EXPECT_FALSE(DecideSepDim(*training, 1, oracle).separable);
  EXPECT_TRUE(DecideSepDim(*training, 2, oracle).separable);
}

TEST(SepDimTest, GhwOracleAgrees) {
  auto training = Example62();
  QbeOracle oracle = MakeGhwQbeOracle(1);
  EXPECT_FALSE(DecideSepDim(*training, 1, oracle).separable);
  EXPECT_TRUE(DecideSepDim(*training, 2, oracle).separable);
}

TEST(SepDimTest, ConstantLabelingTriviallySeparable) {
  auto db = std::make_shared<Database>(UnarySchema());
  Value a = AddEntity(*db, "a");
  Value b = AddEntity(*db, "b");
  TrainingDatabase training(db);
  training.SetLabel(a, kPositive);
  training.SetLabel(b, kPositive);
  EXPECT_TRUE(DecideSepDim(training, 1, MakeCqQbeOracle()).separable);
}

TEST(SepDimTest, LargeEllMatchesUnboundedSeparability) {
  // With ℓ = |entities|, bounded-dimension separability coincides with
  // plain CQ[m]-separability.
  auto training = Example62();
  bool unbounded = DecideCqmSep(*training, 2).separable;
  bool bounded =
      DecideSepDim(*training, 3, MakeCqmQbeOracle(2)).separable;
  EXPECT_EQ(unbounded, bounded);
  EXPECT_TRUE(bounded);
}

TEST(Lemma65ReductionTest, PreservesExistence) {
  // QBE instance with an explanation: D = {R(a), S(b)} over a plain
  // schema, S+ = {a}, S- = dom \ S+ = {b}.
  Schema plain;
  plain.AddRelation("R", 1);
  plain.AddRelation("S", 1);
  auto schema = std::make_shared<const Schema>(std::move(plain));
  Database db(schema);
  db.AddFact("R", {"a"});
  db.AddFact("S", {"b"});
  Value a = db.FindValue("a");

  for (std::size_t ell : {1u, 2u, 3u}) {
    auto training = ReduceQbeToSepEll(db, {a}, ell);
    // The reduced instance has |dom| + ell entities.
    EXPECT_EQ(training->Entities().size(), db.domain().size() + ell);
    SepDimResult result =
        DecideSepDim(*training, ell, MakeCqQbeOracle());
    EXPECT_TRUE(result.separable) << "ell=" << ell;
  }
}

TEST(Lemma65ReductionTest, PreservesNonExistence) {
  // No CQ explanation: S+ = {b} where everything true of b is true of a
  // (R(a), R(b), S(a): b's facts are a subset).
  Schema plain;
  plain.AddRelation("R", 1);
  plain.AddRelation("S", 1);
  auto schema = std::make_shared<const Schema>(std::move(plain));
  Database db(schema);
  db.AddFact("R", {"a"});
  db.AddFact("S", {"a"});
  db.AddFact("R", {"b"});
  Value b = db.FindValue("b");

  // Sanity: the raw QBE instance has no explanation.
  EXPECT_FALSE(SolveCqQbe({&db, {b}, {db.FindValue("a")}}).exists);

  for (std::size_t ell : {1u, 2u}) {
    auto training = ReduceQbeToSepEll(db, {b}, ell);
    SepDimResult result =
        DecideSepDim(*training, ell, MakeCqQbeOracle());
    EXPECT_FALSE(result.separable) << "ell=" << ell;
  }
}


TEST(SepDimModelTest, MaterializesExplicitModel) {
  auto training = Example62();
  QbeOracle oracle = MakeCqmQbeOracle(1);
  SepDimResult result = DecideSepDim(*training, 2, oracle);
  ASSERT_TRUE(result.separable);

  QbeExplainer explainer = [](const QbeInstance& instance) {
    return SolveCqmQbe(instance, 1);
  };
  auto model = BuildSepDimModel(*training, result, explainer);
  ASSERT_TRUE(model.has_value());
  EXPECT_LE(model->statistic.dimension(), 2u);
  EXPECT_EQ(model->TrainingErrors(*training), 0u);
}

TEST(SepDimModelTest, ProductExplainerAlsoWorks) {
  auto training = Example62();
  SepDimResult result = DecideSepDim(*training, 2, MakeCqQbeOracle());
  ASSERT_TRUE(result.separable);
  QbeExplainer explainer = [](const QbeInstance& instance) {
    QbeOptions options;
    options.minimize_explanation = true;
    return SolveCqQbe(instance, options);
  };
  auto model = BuildSepDimModel(*training, result, explainer);
  ASSERT_TRUE(model.has_value());
  EXPECT_EQ(model->TrainingErrors(*training), 0u);
}

}  // namespace
}  // namespace featsep
