#include "covergame/cover_game.h"

#include <random>

#include <gtest/gtest.h>

#include "cq/homomorphism.h"
#include "test_util.h"

namespace featsep {
namespace {

using ::featsep::testing::AddCycle;
using ::featsep::testing::AddEntity;
using ::featsep::testing::AddPath;
using ::featsep::testing::GraphSchema;
using ::featsep::testing::UnarySchema;

TEST(CoverGameTest, ReflexivityOnEntities) {
  Database db(GraphSchema());
  Value e = AddEntity(db, "e");
  testing::AddEdge(db, "e", "t");
  for (std::size_t k : {1u, 2u}) {
    EXPECT_TRUE(CoverGameWins(db, {e}, db, {e}, k)) << "k=" << k;
  }
}

TEST(CoverGameTest, EmptyTuplesOnEqualDatabases) {
  Database db(GraphSchema());
  AddCycle(db, "c", 3);
  EXPECT_TRUE(CoverGameWins(db, {}, db, {}, 1));
  EXPECT_TRUE(CoverGameWins(db, {}, db, {}, 2));
}

TEST(CoverGameTest, HomomorphismImpliesGameWin) {
  // C6 -> C3, so Duplicator must win at every k.
  Database c6(GraphSchema());
  AddCycle(c6, "a", 6);
  Database c3(GraphSchema());
  AddCycle(c3, "b", 3);
  ASSERT_TRUE(HomomorphismExists(c6, c3));
  EXPECT_TRUE(CoverGameWins(c6, {}, c3, {}, 1));
  EXPECT_TRUE(CoverGameWins(c6, {}, c3, {}, 2));
  EXPECT_TRUE(CoverGameWins(c6, {}, c3, {}, 3));
}

TEST(CoverGameTest, CyclesDistinguishedAtWidthTwoButNotOne) {
  // The "C4 exists" query has ghw 2; C4 -/-> C3. So Spoiler wins the
  // 2-cover game from C4 to C3, while width-1 (acyclic) queries cannot
  // distinguish directed cycles: Duplicator wins at k = 1.
  Database c4(GraphSchema());
  AddCycle(c4, "a", 4);
  Database c3(GraphSchema());
  AddCycle(c3, "b", 3);
  EXPECT_TRUE(CoverGameWins(c4, {}, c3, {}, 1));
  EXPECT_FALSE(CoverGameWins(c4, {}, c3, {}, 2));
}

TEST(CoverGameTest, MonotoneInK) {
  // →_{k+1} ⊆ →_k (paper, Section 5 approximation chain), demonstrated on
  // the cycle pair where the inclusion is strict.
  Database c4(GraphSchema());
  AddCycle(c4, "a", 4);
  Database c3(GraphSchema());
  AddCycle(c3, "b", 3);
  bool k1 = CoverGameWins(c4, {}, c3, {}, 1);
  bool k2 = CoverGameWins(c4, {}, c3, {}, 2);
  EXPECT_TRUE(k1 || !k2);  // k2 true would require k1 true.
  EXPECT_TRUE(k1);
  EXPECT_FALSE(k2);
}

TEST(CoverGameTest, PathLengthsDistinguishedAtWidthOne) {
  // "Starts a 3-path" is acyclic (ghw 1): true for the head of a 3-edge
  // path, false for the head of a 1-edge path.
  Database d1(GraphSchema());
  auto p3 = AddPath(d1, "p", 3);
  Database d2(GraphSchema());
  auto p1 = AddPath(d2, "q", 1);
  EXPECT_FALSE(CoverGameWins(d1, {p3[0]}, d2, {p1[0]}, 1));
  // The other direction holds: everything true at q0 is true at p0.
  EXPECT_TRUE(CoverGameWins(d2, {p1[0]}, d1, {p3[0]}, 1));
}

TEST(CoverGameTest, UnaryExampleFromPaper) {
  // Example 6.2: D = {R(a), S(a), S(c), Eta(a), Eta(b), Eta(c)}.
  Database db(UnarySchema());
  Value a = AddEntity(db, "a");
  Value b = AddEntity(db, "b");
  Value c = AddEntity(db, "c");
  db.AddFact("R", {"a"});
  db.AddFact("S", {"a"});
  db.AddFact("S", {"c"});

  // b satisfies only Eta(x); a satisfies Eta, R, S; c satisfies Eta, S.
  EXPECT_TRUE(CoverGameWins(db, {b}, db, {a}, 1));
  EXPECT_TRUE(CoverGameWins(db, {b}, db, {c}, 1));
  EXPECT_TRUE(CoverGameWins(db, {c}, db, {a}, 1));
  EXPECT_FALSE(CoverGameWins(db, {a}, db, {b}, 1));
  EXPECT_FALSE(CoverGameWins(db, {a}, db, {c}, 1));
  EXPECT_FALSE(CoverGameWins(db, {c}, db, {b}, 1));
}

TEST(CoverGameTest, InconsistentPebblePairsLose) {
  Database db(GraphSchema());
  Value e1 = AddEntity(db, "e1");
  Value e2 = AddEntity(db, "e2");
  // ā repeats e1 but b̄ maps it to two targets: not a function.
  EXPECT_FALSE(CoverGameWins(db, {e1, e1}, db, {e1, e2}, 1));
  EXPECT_TRUE(CoverGameWins(db, {e1, e1}, db, {e2, e2}, 1));
}

TEST(CoverGameTest, PreorderMatrix) {
  Database db(GraphSchema());
  Value e1 = AddEntity(db, "e1");
  Value e2 = AddEntity(db, "e2");
  Value e3 = AddEntity(db, "e3");
  testing::AddEdge(db, "e1", "t1");
  testing::AddEdge(db, "e2", "t2");
  (void)e3;
  auto leq = CoverPreorder(db, {e1, e2, e3}, 1);
  // e1 and e2 are equivalent; e3 below both.
  EXPECT_TRUE(leq[0][1]);
  EXPECT_TRUE(leq[1][0]);
  EXPECT_TRUE(leq[2][0]);
  EXPECT_FALSE(leq[0][2]);
  for (int i = 0; i < 3; ++i) EXPECT_TRUE(leq[i][i]);
}

// Property test: homomorphism implies →_k, and for k ≥ |D| the game is
// exactly the homomorphism test, over random pointed graphs.
TEST(CoverGamePropertyTest, SandwichedByHomomorphism) {
  std::mt19937_64 rng(41);
  for (int trial = 0; trial < 25; ++trial) {
    Database a(GraphSchema());
    Database b(GraphSchema());
    RelationId e = a.schema().FindRelation("E");
    int facts_a = 3 + static_cast<int>(rng() % 3);
    for (int i = 0; i < facts_a; ++i) {
      a.AddFact(e, {a.Intern("a" + std::to_string(rng() % 3)),
                    a.Intern("a" + std::to_string(rng() % 3))});
    }
    for (int i = 0; i < 5; ++i) {
      b.AddFact(e, {b.Intern("b" + std::to_string(rng() % 3)),
                    b.Intern("b" + std::to_string(rng() % 3))});
    }
    bool hom = HomomorphismExists(a, b);
    bool game1 = CoverGameWins(a, {}, b, {}, 1);
    bool game_full = CoverGameWins(a, {}, b, {}, a.size());
    if (hom) {
      EXPECT_TRUE(game1);
      EXPECT_TRUE(game_full);
    }
    // With every fact coverable at once, the game degenerates to the
    // homomorphism test.
    EXPECT_EQ(game_full, hom);
  }
}

// Property test: →_1 is transitive on random pointed graphs.
TEST(CoverGamePropertyTest, Transitivity) {
  std::mt19937_64 rng(43);
  int checked = 0;
  for (int trial = 0; trial < 40; ++trial) {
    auto make = [&](const std::string& prefix) {
      Database db(GraphSchema());
      RelationId e = db.schema().FindRelation("E");
      for (int i = 0; i < 4; ++i) {
        db.AddFact(e, {db.Intern(prefix + std::to_string(rng() % 3)),
                       db.Intern(prefix + std::to_string(rng() % 3))});
      }
      return db;
    };
    Database a = make("a");
    Database b = make("b");
    Database c = make("c");
    if (a.domain().empty() || b.domain().empty() || c.domain().empty()) {
      continue;
    }
    Value va = a.domain()[0];
    Value vb = b.domain()[0];
    Value vc = c.domain()[0];
    if (CoverGameWins(a, {va}, b, {vb}, 1) &&
        CoverGameWins(b, {vb}, c, {vc}, 1)) {
      EXPECT_TRUE(CoverGameWins(a, {va}, c, {vc}, 1));
      ++checked;
    }
  }
  EXPECT_GT(checked, 0) << "vacuous property test";
}

TEST(CoverGameTest, SolverStatisticsExposed) {
  Database db(GraphSchema());
  AddCycle(db, "c", 4);
  CoverGameSolver solver(db, db, 2);
  EXPECT_GT(solver.num_positions(), 4u);
  EXPECT_GT(solver.num_candidate_strategies(), 0u);
}

}  // namespace
}  // namespace featsep
