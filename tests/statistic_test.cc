#include "core/statistic.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace featsep {
namespace {

using ::featsep::testing::AddEntity;
using ::featsep::testing::GraphSchema;

Statistic OutInStatistic() {
  auto schema = GraphSchema();
  ConjunctiveQuery out = ConjunctiveQuery::MakeFeatureQuery(schema);
  out.AddAtom(schema->FindRelation("E"),
              {out.free_variable(), out.NewVariable("y")});
  ConjunctiveQuery in = ConjunctiveQuery::MakeFeatureQuery(schema);
  in.AddAtom(schema->FindRelation("E"),
             {in.NewVariable("z"), in.free_variable()});
  return Statistic({out, in});
}

TEST(StatisticTest, VectorSemantics) {
  Database db(GraphSchema());
  Value both = AddEntity(db, "both");
  Value none = AddEntity(db, "none");
  Value only_out = AddEntity(db, "out");
  testing::AddEdge(db, "both", "t");
  testing::AddEdge(db, "u", "both");
  testing::AddEdge(db, "out", "w");

  Statistic statistic = OutInStatistic();
  EXPECT_EQ(statistic.Vector(db, both), (FeatureVector{1, 1}));
  EXPECT_EQ(statistic.Vector(db, none), (FeatureVector{-1, -1}));
  EXPECT_EQ(statistic.Vector(db, only_out), (FeatureVector{1, -1}));
}

TEST(StatisticTest, MatrixMatchesVectors) {
  Database db(GraphSchema());
  AddEntity(db, "a");
  AddEntity(db, "b");
  testing::AddEdge(db, "a", "t");
  Statistic statistic = OutInStatistic();
  std::vector<FeatureVector> matrix = statistic.Matrix(db);
  std::vector<Value> entities = db.Entities();
  ASSERT_EQ(matrix.size(), entities.size());
  for (std::size_t i = 0; i < entities.size(); ++i) {
    EXPECT_EQ(matrix[i], statistic.Vector(db, entities[i]));
  }
}

TEST(StatisticTest, TotalAtoms) {
  // Each feature: Eta(x) + one E atom = 2; total 4.
  EXPECT_EQ(OutInStatistic().TotalAtoms(), 4u);
  EXPECT_EQ(Statistic().TotalAtoms(), 0u);
}

TEST(SeparatorModelTest, ApplyAndTrainingErrors) {
  auto db = std::make_shared<Database>(GraphSchema());
  Value pos = AddEntity(*db, "pos");
  Value neg = AddEntity(*db, "neg");
  testing::AddEdge(*db, "pos", "t");

  // Classifier: +1 iff the out-edge feature fires (w = (1), w0 = 1).
  SeparatorModel model{
      Statistic({OutInStatistic().feature(0)}),
      LinearClassifier(Rational(1), {Rational(1)})};
  Labeling predicted = model.Apply(*db);
  EXPECT_EQ(predicted.Get(pos), kPositive);
  EXPECT_EQ(predicted.Get(neg), kNegative);

  TrainingDatabase training(db);
  training.SetLabel(pos, kPositive);
  training.SetLabel(neg, kPositive);  // One deliberate disagreement.
  EXPECT_EQ(model.TrainingErrors(training), 1u);
}

TEST(MakeTrainingCollectionTest, PairsVectorsWithLabels) {
  auto db = std::make_shared<Database>(GraphSchema());
  Value a = AddEntity(*db, "a");
  Value b = AddEntity(*db, "b");
  testing::AddEdge(*db, "a", "t");
  TrainingDatabase training(db);
  training.SetLabel(a, kPositive);
  training.SetLabel(b, kNegative);
  TrainingCollection collection =
      MakeTrainingCollection(OutInStatistic(), training);
  ASSERT_EQ(collection.size(), 2u);
  EXPECT_EQ(collection[0].first, (FeatureVector{1, -1}));
  EXPECT_EQ(collection[0].second, kPositive);
  EXPECT_EQ(collection[1].first, (FeatureVector{-1, -1}));
  EXPECT_EQ(collection[1].second, kNegative);
}

}  // namespace
}  // namespace featsep
