#include <random>

#include <gtest/gtest.h>

#include "core/dimension_bounded.h"
#include "core/ghw_separability.h"
#include "core/separability.h"
#include "cq/evaluation.h"
#include "io/cq_parser.h"
#include "workload/generators.h"
#include "workload/molecules.h"
#include "workload/movies.h"
#include "workload/thm57.h"
#include "workload/vertex_cover.h"

namespace featsep {
namespace {

TEST(GeneratorsTest, PathLengthFamilySeparable) {
  auto training = PathLengthFamily({0, 1, 2, 3}, 2);
  EXPECT_EQ(training->Entities().size(), 4u);
  EXPECT_EQ(training->PositiveExamples().size(), 2u);
  EXPECT_TRUE(DecideGhwSep(*training, 1).separable);
  EXPECT_TRUE(DecideCqmSep(*training, 2).separable);
}

TEST(GeneratorsTest, RandomPlantedGraphSeparableWithoutNoise) {
  RandomGraphParams params;
  params.num_entities = 6;
  params.num_background_nodes = 5;
  params.num_background_edges = 6;
  params.planted_path_length = 2;
  params.seed = 7;
  auto training = RandomPlantedGraph(params);
  EXPECT_TRUE(DecideCqmSep(*training, 2).separable);
  EXPECT_TRUE(DecideGhwSep(*training, 1).separable);
}

TEST(GeneratorsTest, NoiseCreatesDisagreement) {
  RandomGraphParams params;
  params.num_entities = 12;
  params.planted_path_length = 2;
  params.label_noise = 0.5;
  params.seed = 11;
  auto noisy = RandomPlantedGraph(params);
  GhwRelabelResult relabel = GhwOptimalRelabel(*noisy, 1);
  EXPECT_GT(relabel.disagreement, 0u);
}

TEST(Thm57Test, AlternatingPathForcesDimension) {
  // The generated GHW(1) statistic needs one feature per →₁ class: the m+1
  // path positions are pairwise inequivalent, so the implicit statistic of
  // Algorithm 1 has dimension m+1 — the Theorem 5.7(a) dimension growth.
  for (std::size_t m : {2u, 4u, 6u}) {
    auto training = AlternatingPathFamily(m);
    auto classifier = GhwClassifier::Train(training, 1);
    ASSERT_TRUE(classifier.has_value()) << m;
    EXPECT_EQ(classifier->dimension(), m + 1) << m;
  }
}

TEST(Thm57Test, PrimeCycleFamilyShape) {
  PrimeCycleFamily family = MakePrimeCycleFamily(3);
  EXPECT_EQ(family.primes, (std::vector<std::size_t>{2, 3, 5}));
  EXPECT_EQ(family.negative_prime, 7u);
  EXPECT_EQ(family.lcm, 30u);
  EXPECT_EQ(family.positives.size(), 3u);
  // |D| = sum of cycle lengths + tails + eta facts: linear in Σ p.
  EXPECT_LT(family.training->database().size(), 40u);
}

TEST(Thm57Test, PrimeCycleCanonicalFeatureHasLcmCycle) {
  // The canonical single-feature explanation (the product of the
  // positives) must contain a directed cycle of length lcm(p_1..p_r); we
  // verify the mechanism at r = 2: the product of the C2- and C3-tail
  // entities contains a C6 and is a valid explanation against C5.
  PrimeCycleFamily family = MakePrimeCycleFamily(2);
  const Database& db = family.training->database();
  QbeResult result =
      SolveCqQbe({&db, family.positives, {family.negative}});
  ASSERT_TRUE(result.exists);
  // A 6-cycle query must map into the explanation's canonical database
  // (shifted by the tail): check that the explanation excludes the
  // negative and selects the positives.
  CqEvaluator evaluator(*result.explanation);
  for (Value p : family.positives) {
    EXPECT_TRUE(evaluator.SelectsEntity(db, p));
  }
  EXPECT_FALSE(evaluator.SelectsEntity(db, family.negative));
}

TEST(Thm57Test, FirstPrimes) {
  EXPECT_EQ(FirstPrimes(5), (std::vector<std::size_t>{2, 3, 5, 7, 11}));
}

TEST(VertexCoverTest, ReductionMatchesExactCover) {
  // Prop 6.9: CQ[1]-SEP[ℓ] on the reduced instance iff VC(G) ≤ ℓ, verified
  // against exact vertex cover on random small graphs.
  std::mt19937_64 rng(53);
  for (int trial = 0; trial < 6; ++trial) {
    std::size_t n = 4;
    std::vector<std::pair<std::size_t, std::size_t>> edges;
    for (std::size_t u = 0; u < n; ++u) {
      for (std::size_t v = u + 1; v < n; ++v) {
        if (rng() % 2 == 0) edges.emplace_back(u, v);
      }
    }
    if (edges.empty()) continue;
    VertexCoverInstance instance = MakeVertexCoverInstance(n, edges);
    std::size_t optimum = MinVertexCover(n, edges);
    QbeOracle oracle = MakeCqmQbeOracle(1);
    for (std::size_t ell = 1; ell <= n; ++ell) {
      bool separable =
          DecideSepDim(*instance.training, ell, oracle).separable;
      EXPECT_EQ(separable, ell >= optimum)
          << "trial " << trial << " ell " << ell << " optimum " << optimum;
    }
  }
}

TEST(MoleculesTest, MotifLabelIsCq4Separable) {
  MoleculeParams params;
  params.num_molecules = 6;
  params.atoms_per_molecule = 4;
  params.bonds_per_molecule = 4;
  params.seed = 3;
  auto training = MakeMoleculeDataset(params);
  // Need both classes present for a meaningful test.
  if (training->PositiveExamples().empty() ||
      training->NegativeExamples().empty()) {
    GTEST_SKIP() << "degenerate sample";
  }
  // The planted motif has 4 atoms; restrict variable reuse to keep the
  // enumeration tractable.
  CqmSepResult result = DecideCqmSep(*training, 4, 2);
  EXPECT_TRUE(result.separable);
}

TEST(MoleculesTest, PlantedMotifQuerySeparatesPerfectly) {
  MoleculeParams params;
  params.num_molecules = 10;
  params.seed = 5;
  auto training = MakeMoleculeDataset(params);
  auto q = ParseCq(training->database().schema_ptr(),
                   "q(x) :- Eta(x), HasAtom(x, a), Nitrogen(a), Bond(a, b), "
                   "Oxygen(b)");
  ASSERT_TRUE(q.ok()) << q.error().message();
  CqEvaluator evaluator(q.value());
  for (Value e : training->Entities()) {
    bool selected = evaluator.SelectsEntity(training->database(), e);
    EXPECT_EQ(selected, training->label(e) == kPositive);
  }
}

TEST(MoviesTest, DatabaseShape) {
  auto db = MakeMovieDatabase();
  EXPECT_EQ(db->Entities().size(), 7u);
  EXPECT_GT(db->size(), 15u);
}

TEST(MoviesTest, SciFiActorsExplainable) {
  auto db = MakeMovieDatabase();
  // Positives: acted in a scifi movie (ada, bela, dora, fay? fay acted in
  // nebula (scifi) and harvest). Negatives: carlos, emil, gus.
  std::vector<Value> positives = {db->FindValue("ada"), db->FindValue("bela"),
                                  db->FindValue("dora"),
                                  db->FindValue("fay")};
  std::vector<Value> negatives = {db->FindValue("carlos"),
                                  db->FindValue("emil"),
                                  db->FindValue("gus")};
  QbeResult result = SolveCqQbe({db.get(), positives, negatives});
  ASSERT_TRUE(result.exists);
  CqEvaluator evaluator(*result.explanation);
  for (Value p : positives) EXPECT_TRUE(evaluator.SelectsEntity(*db, p));
  for (Value n : negatives) EXPECT_FALSE(evaluator.SelectsEntity(*db, n));
}

TEST(MoviesTest, ActorDirectorsExplainable) {
  auto db = MakeMovieDatabase();
  // dora and carlos both act in and direct the same movie.
  std::vector<Value> positives = {db->FindValue("dora"),
                                  db->FindValue("carlos")};
  std::vector<Value> negatives = {db->FindValue("ada"), db->FindValue("gus")};
  EXPECT_TRUE(SolveCqQbe({db.get(), positives, negatives}).exists);
}

TEST(MoviesTest, ImpossibleExampleSetHasNoExplanation) {
  auto db = MakeMovieDatabase();
  // emil (acts only in harvest, a drama) as positive vs fay (acts in
  // harvest AND nebula) as negative: everything true of emil is true of
  // fay.
  QbeResult result = SolveCqQbe(
      {db.get(), {db->FindValue("emil")}, {db->FindValue("fay")}});
  EXPECT_FALSE(result.exists);
}

}  // namespace
}  // namespace featsep
