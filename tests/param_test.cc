// Parameterized property sweeps (TEST_P) across the CQ machinery, the
// cover game, and the width notions, driven by random seeds and structured
// parameter grids.

#include <memory>
#include <tuple>

#include <gtest/gtest.h>

#include "core/ghw_generation.h"
#include "covergame/cover_game.h"
#include "cq/containment.h"
#include "cq/core.h"
#include "cq/evaluation.h"
#include "cq/homomorphism.h"
#include "hypertree/ghw.h"
#include "hypertree/htw.h"
#include "test_util.h"
#include "workload/generators.h"

namespace featsep {
namespace {

using ::featsep::testing::AddCycle;
using ::featsep::testing::GraphSchema;

// ---------------------------------------------------------------------------
// Random-query properties, swept over (atom count, seed).

class RandomQueryTest
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::uint64_t>> {
 protected:
  ConjunctiveQuery MakeQuery() const {
    auto [atoms, seed] = GetParam();
    return RandomFeatureQuery(GraphSchema(), atoms, seed);
  }
};

TEST_P(RandomQueryTest, MinimizationPreservesEquivalence) {
  ConjunctiveQuery q = MakeQuery();
  ConjunctiveQuery minimized = MinimizeCq(q);
  EXPECT_TRUE(AreEquivalent(q, minimized)) << q.ToString();
  EXPECT_LE(minimized.NumAtoms(true), q.NumAtoms(true));
}

TEST_P(RandomQueryTest, GhwAtMostAtomCountAndHtwSandwich) {
  ConjunctiveQuery q = MakeQuery();
  Hypergraph h = QueryHypergraph(q);
  std::size_t ghw = Ghw(h);
  std::size_t htw = Htw(h);
  EXPECT_LE(ghw, q.NumAtoms(true)) << q.ToString();  // CQ[m] ⊆ GHW(m).
  EXPECT_LE(ghw, htw) << q.ToString();
  EXPECT_LE(htw, 3 * ghw + 1) << q.ToString();
}

TEST_P(RandomQueryTest, ContainmentIsReflexive) {
  ConjunctiveQuery q = MakeQuery();
  EXPECT_TRUE(IsContainedIn(q, q)) << q.ToString();
  EXPECT_TRUE(AreEquivalent(q, q)) << q.ToString();
}

TEST_P(RandomQueryTest, EvaluationRespectsContainmentOnData) {
  // If q1 ⊆ q2 then q1(D) ⊆ q2(D) on a concrete database.
  auto [atoms, seed] = GetParam();
  ConjunctiveQuery q1 = RandomFeatureQuery(GraphSchema(), atoms, seed);
  ConjunctiveQuery q2 = RandomFeatureQuery(GraphSchema(), atoms, seed + 1);
  if (!IsContainedIn(q1, q2)) GTEST_SKIP() << "not contained";
  RandomGraphParams params;
  params.num_entities = 5;
  params.seed = seed + 2;
  auto training = RandomPlantedGraph(params);
  const Database& db = training->database();
  CqEvaluator e1(q1);
  CqEvaluator e2(q2);
  for (Value e : db.Entities()) {
    if (e1.SelectsEntity(db, e)) {
      EXPECT_TRUE(e2.SelectsEntity(db, e));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, RandomQueryTest,
    ::testing::Combine(::testing::Values(1u, 2u, 3u, 4u),
                       ::testing::Values(1u, 2u, 3u, 4u, 5u)));

// ---------------------------------------------------------------------------
// Cover-game chain →  ⊆ →₂ ⊆ →₁ on directed cycle pairs, swept over (m, n).

class CycleGameTest
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::size_t>> {
};

TEST_P(CycleGameTest, ApproximationChain) {
  auto [m, n] = GetParam();
  Database a(GraphSchema());
  AddCycle(a, "a", m);
  Database b(GraphSchema());
  AddCycle(b, "b", n);
  bool hom = HomomorphismExists(a, b);  // C_m -> C_n iff n | m.
  bool game2 = CoverGameWins(a, {}, b, {}, 2);
  bool game1 = CoverGameWins(a, {}, b, {}, 1);
  EXPECT_EQ(hom, m % n == 0);
  // The chain → ⊆ →₂ ⊆ →₁ (paper, Section 5).
  EXPECT_TRUE(!hom || game2) << m << "," << n;
  EXPECT_TRUE(!game2 || game1) << m << "," << n;
  // Directed cycles of length >= 3 are never distinguished at k = 1
  // (their distinguishing cycle queries have ghw 2). Length 2 is special:
  // E(y1,y2) ∧ E(y2,y1) lives on a SINGLE hypergraph edge {y1,y2}, so the
  // 2-cycle query already has ghw 1 — hence m, n >= 3 below.
  EXPECT_TRUE(game1) << m << "," << n;
  // At k = 2 the cycle query of length m witnesses n ∤ m.
  EXPECT_EQ(game2, m % n == 0) << m << "," << n;
}

INSTANTIATE_TEST_SUITE_P(
    Pairs, CycleGameTest,
    ::testing::Combine(::testing::Values(3u, 4u, 6u, 9u),
                       ::testing::Values(3u, 4u, 5u)));

TEST(CycleGameSpecialCase, TwoCyclesAreWidthOneDistinguishable) {
  // The ghw-1 query E(y1,y2) ∧ E(y2,y1) is true on C2 and false on C4,
  // so Spoiler wins already the 1-cover game from C2 to C4.
  Database a(GraphSchema());
  AddCycle(a, "a", 2);
  Database b(GraphSchema());
  AddCycle(b, "b", 4);
  EXPECT_FALSE(CoverGameWins(a, {}, b, {}, 1));
  // The converse direction holds at every k: C4 folds onto C2 (2 | 4),
  // so there is a full homomorphism.
  EXPECT_TRUE(HomomorphismExists(b, a));
  EXPECT_TRUE(CoverGameWins(b, {}, a, {}, 1));
  EXPECT_TRUE(CoverGameWins(b, {}, a, {}, 2));
}

// ---------------------------------------------------------------------------
// Unraveling depth sweep: the depth-d unraveling always selects its base
// point and stays acyclic.

class UnravelDepthTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(UnravelDepthTest, PathFamilyStructure) {
  auto training = PathLengthFamily({0, 1, 2, 3}, 2);
  const Database& db = training->database();
  std::vector<Value> entities = db.Entities();
  for (Value e : entities) {
    ConjunctiveQuery q = UnravelingQuery(db, e, GetParam());
    EXPECT_TRUE(IsInGhw(q, 1));
    EXPECT_TRUE(CqEvaluator(q).SelectsEntity(db, e));
  }
}

INSTANTIATE_TEST_SUITE_P(Depths, UnravelDepthTest,
                         ::testing::Values(0u, 1u, 2u, 3u, 4u));

}  // namespace
}  // namespace featsep
