#include "core/ghw_separability.h"

#include <memory>
#include <random>

#include <gtest/gtest.h>

#include "core/separability.h"
#include "relational/database_ops.h"
#include "test_util.h"

namespace featsep {
namespace {

using ::featsep::testing::AddCycle;
using ::featsep::testing::AddEntity;
using ::featsep::testing::GraphSchema;

/// Entities at the heads of paths of given lengths, labeled by the
/// predicate length >= 2.
std::shared_ptr<TrainingDatabase> PathLengthDataset(
    const std::vector<std::size_t>& lengths) {
  auto db = std::make_shared<Database>(GraphSchema());
  auto training = std::make_shared<TrainingDatabase>(db);
  for (std::size_t i = 0; i < lengths.size(); ++i) {
    std::string prefix = "p" + std::to_string(i) + "_";
    auto nodes = testing::AddPath(*db, prefix, lengths[i]);
    db->AddFact(db->schema().entity_relation(), {nodes[0]});
    training->SetLabel(nodes[0],
                       lengths[i] >= 2 ? kPositive : kNegative);
  }
  return training;
}

/// Entities attached by a one-way tail edge to directed cycles of the
/// given lengths; label +1 iff the length is divisible by 4. With the tail
/// (rather than η directly on a cycle node) no acyclic query can see the
/// cycle length — walks from the entity never return to an η-marked node —
/// so width 1 cannot separate, while the ghw-2 cycle queries can.
std::shared_ptr<TrainingDatabase> CycleDataset(
    const std::vector<std::size_t>& lengths) {
  auto db = std::make_shared<Database>(GraphSchema());
  auto training = std::make_shared<TrainingDatabase>(db);
  RelationId edge = db->schema().FindRelation("E");
  for (std::size_t i = 0; i < lengths.size(); ++i) {
    std::string prefix = "c" + std::to_string(i) + "_";
    auto nodes = AddCycle(*db, prefix, lengths[i]);
    Value e = db->Intern(prefix + "e");
    db->AddFact(edge, {e, nodes[0]});
    db->AddFact(db->schema().entity_relation(), {e});
    training->SetLabel(e, lengths[i] % 4 == 0 ? kPositive : kNegative);
  }
  return training;
}

TEST(GhwStructureTest, PathLengthsFormAChain) {
  auto training = PathLengthDataset({0, 1, 2, 3});
  GhwEntityStructure s = ComputeGhwStructure(training->database(), 1);
  ASSERT_EQ(s.entities.size(), 4u);
  // Head of the length-i path satisfies exactly the path queries of
  // length <= i: e_i ≤ e_j iff i <= j... (acyclic queries at the head are
  // out-trees, i.e., path depth governs them).
  EXPECT_EQ(s.num_classes(), 4u);
  for (int i = 0; i < 4; ++i) {
    for (int j = 0; j < 4; ++j) {
      EXPECT_EQ(s.leq[i][j], i <= j) << i << " vs " << j;
    }
  }
  // Topological order must be ascending in path length.
  for (std::size_t pos = 0; pos + 1 < s.topo_order.size(); ++pos) {
    EXPECT_LT(s.classes[s.topo_order[pos]][0],
              s.classes[s.topo_order[pos + 1]][0]);
  }
}

TEST(GhwSepTest, PathLengthsSeparableAtWidthOne) {
  auto training = PathLengthDataset({0, 1, 2, 3});
  EXPECT_TRUE(DecideGhwSep(*training, 1).separable);
}

TEST(GhwSepTest, CycleTailsSeparableAtBothWidths) {
  // Directed cycles of distinct lengths are distinguishable already by
  // acyclic (width-1) queries when pebbled: walk-confluence patterns
  // ("forward paths of lengths p and q from x meet") measure the cycle
  // length mod m through the deterministic out-walks. So separability
  // holds at k = 1 and, by GHW(1) ⊆ GHW(2) monotonicity, at k = 2.
  auto training = CycleDataset({4, 8, 3, 5});
  EXPECT_TRUE(DecideGhwSep(*training, 1).separable);
  EXPECT_TRUE(DecideGhwSep(*training, 2).separable);
}

/// Twin entities with identical structure and conflicting labels: never
/// separable, at any width (they are →_k-equivalent for every k).
std::shared_ptr<TrainingDatabase> ConflictingTwins() {
  auto db = std::make_shared<Database>(GraphSchema());
  auto training = std::make_shared<TrainingDatabase>(db);
  for (int i = 0; i < 2; ++i) {
    std::string prefix = "t" + std::to_string(i) + "_";
    auto nodes = testing::AddPath(*db, prefix, 2);
    db->AddFact(db->schema().entity_relation(), {nodes[0]});
    training->SetLabel(nodes[0], i == 0 ? kPositive : kNegative);
  }
  return training;
}

TEST(GhwSepTest, MonotoneInK) {
  // GHW(k) ⊆ GHW(k+1), so separability is monotone in k; exercised on a
  // separable instance and on a twin-conflict instance (inseparable at
  // every k).
  auto separable = PathLengthDataset({0, 1, 2});
  EXPECT_TRUE(DecideGhwSep(*separable, 1).separable);
  EXPECT_TRUE(DecideGhwSep(*separable, 2).separable);

  auto twins = ConflictingTwins();
  GhwSepResult at1 = DecideGhwSep(*twins, 1);
  GhwSepResult at2 = DecideGhwSep(*twins, 2);
  EXPECT_FALSE(at1.separable);
  EXPECT_FALSE(at2.separable);
  EXPECT_TRUE(at1.conflict.has_value());
  EXPECT_TRUE(at2.conflict.has_value());
}

TEST(GhwClassifierTest, TrainFailsOnInseparableInput) {
  EXPECT_FALSE(GhwClassifier::Train(ConflictingTwins(), 1).has_value());
  EXPECT_FALSE(GhwClassifier::Train(ConflictingTwins(), 2).has_value());
}

TEST(GhwClassifierTest, ReproducesTrainingLabels) {
  auto training = PathLengthDataset({0, 1, 2, 3});
  auto classifier = GhwClassifier::Train(training, 1);
  ASSERT_TRUE(classifier.has_value());
  EXPECT_EQ(classifier->dimension(), 4u);
  Labeling predicted = classifier->Classify(training->database());
  for (Value e : training->Entities()) {
    EXPECT_EQ(predicted.Get(e), training->label(e));
  }
}

TEST(GhwClassifierTest, Algorithm1ClassifiesUnseenEntities) {
  auto training = PathLengthDataset({0, 1, 2, 3});
  auto classifier = GhwClassifier::Train(training, 1);
  ASSERT_TRUE(classifier.has_value());

  Database eval(GraphSchema());
  auto long_path = testing::AddPath(eval, "L", 5);
  auto short_path = testing::AddPath(eval, "S", 1);
  eval.AddFact(eval.schema().entity_relation(), {long_path[0]});
  eval.AddFact(eval.schema().entity_relation(), {short_path[0]});
  Labeling predicted = classifier->Classify(eval);
  EXPECT_EQ(predicted.Get(long_path[0]), kPositive);
  EXPECT_EQ(predicted.Get(short_path[0]), kNegative);
}

TEST(GhwClassifierTest, Algorithm1AtWidthTwoOnCycles) {
  auto training = CycleDataset({4, 8, 3, 5});
  auto classifier = GhwClassifier::Train(training, 2);
  ASSERT_TRUE(classifier.has_value());

  // The evaluation database realizes the same global structure (an entity
  // on a cycle of each training length): the implicit features q_{e_i} may
  // contain conjuncts about D's disconnected components, so D' must not be
  // globally poorer than D for the intuitive per-entity reading.
  Database eval(GraphSchema());
  std::vector<std::pair<std::size_t, Label>> expected = {
      {4, kPositive}, {8, kPositive}, {3, kNegative}, {5, kNegative}};
  std::vector<Value> eval_entities;
  RelationId edge = eval.schema().FindRelation("E");
  for (const auto& [length, label] : expected) {
    (void)label;
    std::string prefix = "x" + std::to_string(length) + "_";
    auto nodes = AddCycle(eval, prefix, length);
    Value f = eval.Intern(prefix + "e");
    eval.AddFact(edge, {f, nodes[0]});
    eval.AddFact(eval.schema().entity_relation(), {f});
    eval_entities.push_back(f);
  }
  Labeling predicted = classifier->Classify(eval);
  for (std::size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(predicted.Get(eval_entities[i]), expected[i].second)
        << "cycle length " << expected[i].first;
  }
}

TEST(GhwApxTest, Algorithm2RecoversFromASingleFlip) {
  // Two classes of 3 equivalent entities each; flip one label.
  auto db = std::make_shared<Database>(GraphSchema());
  auto training = std::make_shared<TrainingDatabase>(db);
  for (int i = 0; i < 3; ++i) {
    std::string name = "long" + std::to_string(i);
    auto nodes = testing::AddPath(*db, name + "_", 2);
    db->AddFact(db->schema().entity_relation(), {nodes[0]});
    training->SetLabel(nodes[0], kPositive);
  }
  for (int i = 0; i < 3; ++i) {
    std::string name = "short" + std::to_string(i);
    auto nodes = testing::AddPath(*db, name + "_", 1);
    db->AddFact(db->schema().entity_relation(), {nodes[0]});
    training->SetLabel(nodes[0], kNegative);
  }
  // Flip one positive to negative: now inseparable, min disagreement 1.
  Value flipped = db->FindValue("long0_0");
  training->SetLabel(flipped, kNegative);

  EXPECT_FALSE(DecideGhwSep(*training, 1).separable);
  GhwRelabelResult relabel = GhwOptimalRelabel(*training, 1);
  EXPECT_EQ(relabel.disagreement, 1u);
  EXPECT_EQ(relabel.relabeled.Get(flipped), kPositive);

  EXPECT_FALSE(DecideGhwApxSep(*training, 1, 0.0));
  EXPECT_TRUE(DecideGhwApxSep(*training, 1, 1.0 / 6.0));

  // ApxCls (Corollary 7.5) classifies an evaluation database.
  Database eval(GraphSchema());
  auto nodes = testing::AddPath(eval, "e_", 2);
  eval.AddFact(eval.schema().entity_relation(), {nodes[0]});
  auto labeling = GhwApxClassify(training, 1, 1.0 / 6.0, eval);
  ASSERT_TRUE(labeling.has_value());
  EXPECT_EQ(labeling->Get(nodes[0]), kPositive);
}

TEST(GhwApxTest, Algorithm2IsOptimalAgainstExhaustiveSearch) {
  // Small instance: verify minimality of the disagreement against brute
  // force over all 2^n labelings (Theorem 7.4's guarantee).
  auto training = PathLengthDataset({0, 1, 1, 2, 2, 2});
  // Corrupt labels adversarially.
  std::vector<Value> entities = training->Entities();
  training->SetLabel(entities[3], kNegative);
  training->SetLabel(entities[1], kPositive);

  GhwRelabelResult relabel = GhwOptimalRelabel(*training, 1);

  std::size_t brute_best = entities.size() + 1;
  std::size_t n = entities.size();
  for (std::uint64_t mask = 0; mask < (1ULL << n); ++mask) {
    auto db2 = std::make_shared<Database>(
        Copy(training->database()));
    TrainingDatabase candidate(db2);
    std::size_t disagreement = 0;
    for (std::size_t i = 0; i < n; ++i) {
      Label label = (mask >> i) & 1 ? kPositive : kNegative;
      candidate.SetLabel(entities[i], label);
      if (label != training->label(entities[i])) ++disagreement;
    }
    if (disagreement >= brute_best) continue;
    if (DecideGhwSep(candidate, 1).separable) brute_best = disagreement;
  }
  EXPECT_EQ(relabel.disagreement, brute_best);
}

// Property test: CQ[m]-separability implies GHW(m)-separability (since
// CQ[m] ⊆ GHW(m)), on random labeled graph databases.
TEST(GhwSepPropertyTest, CqmImpliesGhw) {
  std::mt19937_64 rng(47);
  int implications = 0;
  for (int trial = 0; trial < 15; ++trial) {
    auto db = std::make_shared<Database>(GraphSchema());
    auto training = std::make_shared<TrainingDatabase>(db);
    int n = 3;
    for (int i = 0; i < n; ++i) {
      Value e = AddEntity(*db, "e" + std::to_string(i));
      training->SetLabel(e, rng() % 2 == 0 ? kPositive : kNegative);
    }
    RelationId edge = db->schema().FindRelation("E");
    for (int i = 0; i < 4; ++i) {
      db->AddFact(edge, {db->Intern("v" + std::to_string(rng() % 5)),
                         db->Intern("v" + std::to_string(rng() % 5))});
    }
    // Attach entities to structure randomly.
    for (int i = 0; i < n; ++i) {
      if (rng() % 2 == 0) {
        db->AddFact(edge, {db->FindValue("e" + std::to_string(i)),
                           db->Intern("v" + std::to_string(rng() % 5))});
      }
    }
    if (DecideCqmSep(*training, 2).separable) {
      EXPECT_TRUE(DecideGhwSep(*training, 2).separable);
      ++implications;
    }
  }
  EXPECT_GT(implications, 0) << "vacuous property test";
}

}  // namespace
}  // namespace featsep
