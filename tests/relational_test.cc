#include <cstdint>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "relational/database.h"
#include "relational/database_ops.h"
#include "relational/schema.h"
#include "relational/training_database.h"
#include "test_util.h"
#include "util/parallel.h"

namespace featsep {
namespace {

using ::featsep::testing::AddEntity;
using ::featsep::testing::GraphSchema;

TEST(SchemaTest, AddAndLookup) {
  Schema schema;
  RelationId r = schema.AddRelation("R", 2);
  RelationId s = schema.AddRelation("S", 3);
  EXPECT_EQ(schema.size(), 2u);
  EXPECT_EQ(schema.FindRelation("R"), r);
  EXPECT_EQ(schema.FindRelation("S"), s);
  EXPECT_EQ(schema.FindRelation("T"), kNoRelation);
  EXPECT_EQ(schema.arity(r), 2u);
  EXPECT_EQ(schema.name(s), "S");
  EXPECT_EQ(schema.max_arity(), 3u);
  EXPECT_FALSE(schema.has_entity_relation());
}

TEST(SchemaTest, EntityDesignation) {
  Schema schema;
  RelationId eta = schema.AddRelation("Eta", 1);
  schema.set_entity_relation(eta);
  EXPECT_TRUE(schema.has_entity_relation());
  EXPECT_EQ(schema.entity_relation(), eta);
}

TEST(SchemaTest, StructuralEquality) {
  Schema a;
  a.set_entity_relation(a.AddRelation("Eta", 1));
  a.AddRelation("E", 2);
  Schema b;
  b.set_entity_relation(b.AddRelation("Eta", 1));
  b.AddRelation("E", 2);
  EXPECT_TRUE(a == b);
  Schema c;
  c.set_entity_relation(c.AddRelation("Eta", 1));
  c.AddRelation("E", 3);
  EXPECT_FALSE(a == c);
}

TEST(DatabaseTest, InternIsIdempotent) {
  Database db(GraphSchema());
  Value a1 = db.Intern("a");
  Value a2 = db.Intern("a");
  EXPECT_EQ(a1, a2);
  EXPECT_EQ(db.FindValue("a"), a1);
  EXPECT_EQ(db.FindValue("zzz"), kNoValue);
  EXPECT_EQ(db.value_name(a1), "a");
}

TEST(DatabaseTest, FactsDeduplicate) {
  Database db(GraphSchema());
  EXPECT_TRUE(db.AddFact("E", {"a", "b"}));
  EXPECT_FALSE(db.AddFact("E", {"a", "b"}));
  EXPECT_TRUE(db.AddFact("E", {"b", "a"}));
  EXPECT_EQ(db.size(), 2u);
}

TEST(DatabaseTest, DomainTracksFactOccurrences) {
  Database db(GraphSchema());
  db.Intern("isolated");  // Interned but never in a fact.
  db.AddFact("E", {"a", "b"});
  EXPECT_EQ(db.domain().size(), 2u);
  EXPECT_TRUE(db.InDomain(db.FindValue("a")));
  EXPECT_FALSE(db.InDomain(db.FindValue("isolated")));
}

TEST(DatabaseTest, Indexes) {
  Database db(GraphSchema());
  db.AddFact("E", {"a", "b"});
  db.AddFact("E", {"a", "c"});
  db.AddFact("E", {"b", "c"});
  RelationId e = db.schema().FindRelation("E");
  Value a = db.FindValue("a");
  Value c = db.FindValue("c");
  EXPECT_EQ(db.FactsOf(e).size(), 3u);
  EXPECT_EQ(db.FactsWith(e, 0, a).size(), 2u);
  EXPECT_EQ(db.FactsWith(e, 1, c).size(), 2u);
  EXPECT_EQ(db.FactsWith(e, 1, a).size(), 0u);
  EXPECT_EQ(db.FactsContaining(a).size(), 2u);
}

TEST(DatabaseTest, FactsContainingListsRepeatedValueOnce) {
  Database db(GraphSchema());
  db.AddFact("E", {"a", "a"});
  Value a = db.FindValue("a");
  EXPECT_EQ(db.FactsContaining(a).size(), 1u);
}

TEST(DatabaseTest, Entities) {
  Database db(GraphSchema());
  AddEntity(db, "e1");
  AddEntity(db, "e2");
  db.AddFact("E", {"e1", "x"});
  EXPECT_EQ(db.Entities().size(), 2u);
  EXPECT_TRUE(db.IsEntity(db.FindValue("e1")));
  EXPECT_FALSE(db.IsEntity(db.FindValue("x")));
}

TEST(TrainingDatabaseTest, LabelingLifecycle) {
  auto db = std::make_shared<Database>(GraphSchema());
  Value e1 = AddEntity(*db, "e1");
  Value e2 = AddEntity(*db, "e2");
  TrainingDatabase training(db);
  EXPECT_FALSE(training.IsFullyLabeled());
  training.SetLabel(e1, kPositive);
  training.SetLabel(e2, kNegative);
  EXPECT_TRUE(training.IsFullyLabeled());
  EXPECT_EQ(training.label(e1), kPositive);
  EXPECT_EQ(training.PositiveExamples().size(), 1u);
  EXPECT_EQ(training.NegativeExamples().size(), 1u);
}

TEST(LabelingTest, Disagreement) {
  Labeling a;
  a.Set(0, kPositive);
  a.Set(1, kNegative);
  a.Set(2, kPositive);
  Labeling b;
  b.Set(0, kPositive);
  b.Set(1, kPositive);
  EXPECT_EQ(a.Disagreement(b), 2u);  // Entity 1 flipped, entity 2 missing.
}

TEST(DatabaseOpsTest, InducedSubdatabasePreservesIds) {
  Database db(GraphSchema());
  db.AddFact("E", {"a", "b"});
  db.AddFact("E", {"b", "c"});
  Value a = db.FindValue("a");
  Value b = db.FindValue("b");
  Database sub = InducedSubdatabase(db, {a, b});
  EXPECT_EQ(sub.size(), 1u);
  EXPECT_EQ(sub.FindValue("a"), a);
  EXPECT_EQ(sub.FindValue("b"), b);
  EXPECT_FALSE(sub.InDomain(db.FindValue("c")));
}

TEST(DatabaseOpsTest, MapDatabaseFoldsFacts) {
  Database db(GraphSchema());
  db.AddFact("E", {"a", "b"});
  db.AddFact("E", {"c", "b"});
  Value a = db.FindValue("a");
  Value b = db.FindValue("b");
  Value c = db.FindValue("c");
  std::vector<Value> mapping(db.num_values(), kNoValue);
  mapping[a] = a;
  mapping[b] = b;
  mapping[c] = a;  // Fold c onto a.
  Database mapped = MapDatabase(db, mapping);
  EXPECT_EQ(mapped.size(), 1u);  // Both facts collapse to E(a, b).
  EXPECT_TRUE(mapped.ContainsFact(Fact{db.schema().FindRelation("E"), {a, b}}));
}

TEST(DatabaseOpsTest, DisjointUnionRenamesCollisions) {
  Database a(GraphSchema());
  a.AddFact("E", {"x", "y"});
  Database b(GraphSchema());
  b.AddFact("E", {"x", "z"});
  std::vector<Value> b_map;
  Database u = DisjointUnion(a, b, "_2", &b_map);
  EXPECT_EQ(u.size(), 2u);
  EXPECT_EQ(u.domain().size(), 4u);  // x, y, x_2, z.
  EXPECT_NE(u.FindValue("x_2"), kNoValue);
  EXPECT_EQ(b_map[b.FindValue("x")], u.FindValue("x_2"));
}

TEST(DatabaseOpsTest, CopyPreservesEverything) {
  Database db(GraphSchema());
  AddEntity(db, "e");
  db.AddFact("E", {"e", "f"});
  Database copy = Copy(db);
  EXPECT_EQ(copy.size(), db.size());
  EXPECT_EQ(copy.num_values(), db.num_values());
  EXPECT_EQ(copy.FindValue("e"), db.FindValue("e"));
  EXPECT_TRUE(copy.IsEntity(copy.FindValue("e")));
}

TEST(DatabaseDigestTest, OrderAndInterningInsensitive) {
  Database a(GraphSchema());
  AddEntity(a, "e");
  a.AddFact("E", {"e", "f"});
  a.AddFact("E", {"f", "g"});

  Database b(GraphSchema());
  b.Intern("unused");  // Interned-but-factless values are not content.
  b.AddFact("E", {"f", "g"});
  b.AddFact("E", {"e", "f"});
  AddEntity(b, "e");

  EXPECT_EQ(a.ContentDigest(), b.ContentDigest());
  EXPECT_NE(a.FindValue("e"), b.FindValue("e"));  // Ids genuinely differ.
}

TEST(DatabaseDigestTest, DistinguishesContentAndTracksMutation) {
  Database a(GraphSchema());
  a.AddFact("E", {"x", "y"});
  Database b(GraphSchema());
  b.AddFact("E", {"x", "z"});
  EXPECT_NE(a.ContentDigest(), b.ContentDigest());

  std::uint64_t before = a.ContentDigest();
  a.AddFact("E", {"y", "x"});
  EXPECT_NE(a.ContentDigest(), before);  // AddFact invalidates the memo.
  EXPECT_EQ(Copy(a).ContentDigest(), a.ContentDigest());
}

TEST(DatabaseDigestTest, GoldenValuesArePinnedForever) {
  // ContentDigest() is a persistence contract: it names on-disk cache
  // entries (serve/disk_cache.h) and authenticates shard jobs between
  // processes (serve/shard_protocol.h), so its value for given content must
  // never change — across processes, platforms, standard libraries, or
  // releases of this codebase. These constants pin the explicitly specified
  // FNV-1a-64 format of DESIGN.md §13. If this test fails, do NOT update
  // the constants: you have broken every existing cache directory. Fix the
  // digest, or introduce an explicitly versioned successor.
  Database empty(GraphSchema());
  EXPECT_EQ(empty.ContentDigest(), 0x3a292af2481cd51eULL);

  EXPECT_EQ(testing::MakeWorld().ContentDigest(), 0x67e4952b86c72da1ULL);
  EXPECT_EQ(testing::MakeWorldReordered().ContentDigest(),
            0x67e4952b86c72da1ULL);

  Database one_edge(GraphSchema());
  one_edge.AddFact("E", {"x", "y"});
  EXPECT_EQ(one_edge.ContentDigest(), 0x4a9b532caa651606ULL);

  // Same (empty) fact set over a different schema: distinct digest, also
  // pinned — the schema absorption is part of the format.
  Database empty_unary(testing::UnarySchema());
  EXPECT_EQ(empty_unary.ContentDigest(), 0xdf843fa6ea075208ULL);
}

TEST(DatabaseDigestTest, SchemaShapeIsPartOfTheDigest) {
  // Same fact spelling over structurally different schemas must not
  // collide: the digest covers relation names, arities, and the entity
  // designation.
  Database graph(GraphSchema());
  AddEntity(graph, "e");
  Database unary(testing::UnarySchema());
  AddEntity(unary, "e");
  EXPECT_NE(graph.ContentDigest(), unary.ContentDigest());
}

TEST(DatabaseConcurrencyTest, ColdLazyCachesBuildSafelyUnderParallelFor) {
  // Regression for the removed "warm caches before the parallel region"
  // caveat: the first domain()/domain_index()/ContentDigest() calls may now
  // happen concurrently from pool workers on a cold database. Run under
  // TSan/ASan to make a data race loud.
  for (int round = 0; round < 4; ++round) {
    Database db(GraphSchema());
    AddEntity(db, "e0");
    AddEntity(db, "e1");
    testing::AddEdge(db, "e0", "m");
    testing::AddEdge(db, "m", "e1");

    std::vector<std::size_t> domain_sizes(16, 0);
    std::vector<std::uint64_t> digests(16, 0);
    ParallelFor(8, 16, [&](std::size_t i) {
      domain_sizes[i] = db.domain().size();
      digests[i] = db.ContentDigest();
      // domain_index() must be consistent with the domain it indexes.
      for (Value v : db.domain()) {
        (void)db.domain_index()[v];
      }
    });
    for (std::size_t i = 0; i < 16; ++i) {
      EXPECT_EQ(domain_sizes[i], domain_sizes[0]);
      EXPECT_EQ(digests[i], digests[0]);
    }
    EXPECT_EQ(domain_sizes[0], db.domain().size());
  }
}

}  // namespace
}  // namespace featsep

