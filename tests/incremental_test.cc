#include "serve/incremental.h"

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/separability.h"
#include "linsep/separability_lp.h"
#include "relational/database.h"
#include "relational/training_database.h"
#include "serve/eval_service.h"
#include "test_util.h"
#include "workload/generators.h"

namespace featsep {
namespace {

using ::featsep::testing::AddEdge;
using ::featsep::testing::AddEntity;
using ::featsep::testing::GraphSchema;
using ::featsep::testing::MakeWorld;
using ::featsep::testing::OutInFeatures;
using serve::AffectedEntities;
using serve::DeltaMaintenance;
using serve::EvalService;
using serve::FeatureAnswer;
using serve::IncrementalMaintainer;
using serve::IncrementalSeparability;
using serve::ServeOptions;

/// A from-scratch rebuild of `db` with identical interning and fact order:
/// equal content, completely cold caches.
Database Rebuild(const Database& db) {
  Database fresh(db.schema_ptr());
  for (std::size_t v = 0; v < db.num_values(); ++v) {
    fresh.Intern(db.value_name(static_cast<Value>(v)));
  }
  for (const Fact& fact : db.facts()) {
    fresh.AddFact(fact.relation, fact.args);
  }
  return fresh;
}

EvalService MakeSerialService(std::size_t cache_capacity) {
  ServeOptions options;
  options.num_shards = 1;
  options.cache_capacity = cache_capacity;
  return EvalService(options);
}

TEST(DeltaTest, InsertFactReturnsAppliedDelta) {
  Database db = MakeWorld();
  const std::uint64_t before = db.ContentDigest();
  Value none = db.FindValue("none");
  Value t = db.FindValue("t");
  Delta delta = db.InsertFact(db.schema().FindRelation("E"), {none, t});
  EXPECT_TRUE(delta.applied);
  EXPECT_EQ(delta.kind, Delta::Kind::kInsert);
  EXPECT_FALSE(delta.entity_fact);
  EXPECT_EQ(delta.old_digest, before);
  EXPECT_EQ(delta.new_digest, db.ContentDigest());
  EXPECT_NE(delta.old_digest, delta.new_digest);
  EXPECT_EQ(delta.touched.size(), 2u);
  EXPECT_TRUE(db.ContainsFact(Fact{db.schema().FindRelation("E"), {none, t}}));
  // The patched digest equals a cold recompute over equal content.
  EXPECT_EQ(db.ContentDigest(), Rebuild(db).ContentDigest());
}

TEST(DeltaTest, DuplicateInsertIsNoOp) {
  Database db = MakeWorld();
  const std::size_t size = db.size();
  const Fact fact = db.fact(0);
  Delta delta = db.InsertFact(fact.relation, fact.args);
  EXPECT_FALSE(delta.applied);
  EXPECT_TRUE(delta.touched.empty());
  EXPECT_EQ(delta.old_digest, delta.new_digest);
  EXPECT_EQ(db.size(), size);
}

TEST(DeltaTest, RemoveFactPatchesEverything) {
  Database db = MakeWorld();
  const std::uint64_t before = db.ContentDigest();
  (void)db.domain();  // Warm the domain cache so the patch path runs.
  Value u = db.FindValue("u");
  Value both = db.FindValue("both");
  Delta delta = db.RemoveFact(db.schema().FindRelation("E"), {u, both});
  EXPECT_TRUE(delta.applied);
  EXPECT_EQ(delta.kind, Delta::Kind::kRemove);
  EXPECT_EQ(delta.old_digest, before);
  EXPECT_EQ(delta.new_digest, db.ContentDigest());
  EXPECT_FALSE(
      db.ContainsFact(Fact{db.schema().FindRelation("E"), {u, both}}));
  // "u" occurred only in the removed fact: it left dom(D).
  EXPECT_FALSE(db.InDomain(u));
  Database fresh = Rebuild(db);
  EXPECT_EQ(db.ContentDigest(), fresh.ContentDigest());
  EXPECT_EQ(db.domain(), fresh.domain());
  EXPECT_EQ(db.domain_index(), fresh.domain_index());
  // Secondary indexes survived the FactIndex compaction.
  for (std::size_t v = 0; v < db.num_values(); ++v) {
    EXPECT_EQ(db.FactsContaining(static_cast<Value>(v)).size(),
              fresh.FactsContaining(static_cast<Value>(v)).size());
  }
}

TEST(DeltaTest, RemoveAbsentFactIsNoOp) {
  Database db = MakeWorld();
  Value w = db.Intern("w-absent");
  Delta delta = db.RemoveFact(db.schema().FindRelation("E"), {w, w});
  EXPECT_FALSE(delta.applied);
  EXPECT_EQ(delta.old_digest, delta.new_digest);
}

TEST(DeltaTest, EntityFactDeltasAreFlagged) {
  Database db = MakeWorld();
  Value fresh_entity = db.Intern("extra");
  Delta insert =
      db.InsertFact(db.schema().entity_relation(), {fresh_entity});
  EXPECT_TRUE(insert.applied);
  EXPECT_TRUE(insert.entity_fact);
  EXPECT_TRUE(db.IsEntity(fresh_entity));
  Delta remove =
      db.RemoveFact(db.schema().entity_relation(), {fresh_entity});
  EXPECT_TRUE(remove.applied);
  EXPECT_TRUE(remove.entity_fact);
  EXPECT_FALSE(db.IsEntity(fresh_entity));
}

TEST(DeltaTest, EntityOrderSurvivesRemoval) {
  Database db = MakeWorld();  // Entities: both, none, out.
  Delta delta =
      db.RemoveFact(db.schema().entity_relation(), {db.FindValue("none")});
  ASSERT_TRUE(delta.applied);
  std::vector<Value> entities = db.Entities();
  ASSERT_EQ(entities.size(), 2u);
  EXPECT_EQ(db.value_name(entities[0]), "both");
  EXPECT_EQ(db.value_name(entities[1]), "out");
}

TEST(DeltaTest, DomainPatchMatchesRebuildWhenWarm) {
  Database db = MakeWorld();
  (void)db.domain();
  (void)db.domain_index();
  Value fresh_value = db.Intern("zz-fresh");
  Delta delta = db.InsertFact(db.schema().FindRelation("E"),
                              {db.FindValue("both"), fresh_value});
  ASSERT_TRUE(delta.applied);
  Database fresh = Rebuild(db);
  EXPECT_EQ(db.domain(), fresh.domain());
  EXPECT_EQ(db.domain_index(), fresh.domain_index());
  EXPECT_EQ(db.DomainIndexOf(fresh_value), fresh.DomainIndexOf(fresh_value));
}

/// Satellite property: ANY insert/delete sequence — including duplicate
/// inserts and re-insertion after deletion — leaves the incrementally
/// patched digest equal to a fresh database holding the same content. The
/// PR 8 golden digest values are pinned separately in DatabaseDigestTest.
TEST(DeltaTest, DigestSequencePropertyMatchesFreshDatabase) {
  WorkloadRng rng(0xd1905eedULL);
  Database db(GraphSchema());
  AddEntity(db, "a");
  AddEntity(db, "b");
  AddEdge(db, "a", "b");
  RelationId edge = db.schema().FindRelation("E");
  std::vector<Fact> removed;
  for (std::size_t step = 0; step < 200; ++step) {
    const std::size_t pick = rng.Below(100);
    if (pick < 20 && !removed.empty()) {
      // Re-insert a previously removed fact.
      const Fact fact = removed.back();
      removed.pop_back();
      db.InsertFact(fact.relation, fact.args);
    } else if (pick < 45 && db.size() > 0) {
      // Duplicate insert: must be a digest no-op.
      const Fact fact = db.fact(rng.Below(db.size()));
      Delta delta = db.InsertFact(fact.relation, fact.args);
      EXPECT_FALSE(delta.applied);
    } else if (pick < 70 && db.size() > 1) {
      const Fact fact = db.fact(rng.Below(db.size()));
      removed.push_back(fact);
      db.RemoveFact(fact.relation, fact.args);
    } else {
      Value x = db.Intern("n" + std::to_string(rng.Below(6)));
      Value y = db.Intern("n" + std::to_string(rng.Below(6)));
      db.InsertFact(edge, {x, y});
    }
    ASSERT_EQ(db.ContentDigest(), Rebuild(db).ContentDigest())
        << "digest diverged from recompute at step " << step;
  }
}

TEST(AffectedEntitiesTest, DirectionScreenUsesPreviousAnswer) {
  Database db = MakeWorld();
  std::vector<ConjunctiveQuery> features = OutInFeatures();
  // Previous answer of the out-edge feature: {both, out}.
  FeatureAnswer previous(
      std::unordered_set<std::string>{"both", "out"});
  Delta delta = db.InsertFact(db.schema().FindRelation("E"),
                              {db.FindValue("none"), db.FindValue("t")});
  ASSERT_TRUE(delta.applied);
  std::vector<Value> affected =
      AffectedEntities(db, delta, features[0], &previous);
  // Insert: previously selected entities cannot flip — only "none" can.
  ASSERT_EQ(affected.size(), 1u);
  EXPECT_EQ(db.value_name(affected[0]), "none");
}

TEST(AffectedEntitiesTest, NullPreviousDisablesDirectionScreen) {
  Database db = MakeWorld();
  std::vector<ConjunctiveQuery> features = OutInFeatures();
  Delta delta = db.InsertFact(db.schema().FindRelation("E"),
                              {db.FindValue("none"), db.FindValue("t")});
  ASSERT_TRUE(delta.applied);
  std::vector<Value> with_null =
      AffectedEntities(db, delta, features[0], nullptr);
  FeatureAnswer previous(std::unordered_set<std::string>{"both", "out"});
  std::vector<Value> with_previous =
      AffectedEntities(db, delta, features[0], &previous);
  // The null-previous screen is a superset of the direction-screened one.
  for (Value e : with_previous) {
    EXPECT_NE(std::find(with_null.begin(), with_null.end(), e),
              with_null.end());
  }
  EXPECT_GE(with_null.size(), with_previous.size());
}

TEST(AffectedEntitiesTest, NeighborhoodScreenBoundsTheBlastRadius) {
  // A long path far from the mutation: entities beyond |atoms| hops of the
  // delta cannot flip a 1-atom feature and must be screened out.
  Database db(GraphSchema());
  Value a = AddEntity(db, "a");
  AddEntity(db, "far");
  AddEdge(db, "far", "f1");
  AddEdge(db, "f1", "f2");
  AddEdge(db, "f2", "f3");
  std::vector<ConjunctiveQuery> features = OutInFeatures();
  Delta delta =
      db.InsertFact(db.schema().FindRelation("E"), {a, db.Intern("t")});
  ASSERT_TRUE(delta.applied);
  std::vector<Value> affected =
      AffectedEntities(db, delta, features[0], nullptr);
  for (Value e : affected) {
    EXPECT_NE(db.value_name(e), "far") << "outside the neighborhood bound";
  }
}

TEST(IncrementalMaintainerTest, PatchModeKeepsWarmAnswersExact) {
  Database db = MakeWorld();
  std::vector<ConjunctiveQuery> features = OutInFeatures();
  EvalService service = MakeSerialService(16);
  service.Matrix(features, db);  // Warm both features.
  IncrementalMaintainer maintainer(&service, features);

  Delta delta = db.InsertFact(db.schema().FindRelation("E"),
                              {db.FindValue("none"), db.FindValue("t")});
  ASSERT_TRUE(delta.applied);
  DeltaMaintenance maintenance = maintainer.ApplyDelta(db, delta);
  EXPECT_EQ(maintenance.old_digest, delta.old_digest);
  EXPECT_EQ(maintenance.new_digest, delta.new_digest);
  EXPECT_FALSE(maintenance.entity_set_changed);
  // "none" gained an out-edge: its row flipped and is reported.
  ASSERT_EQ(maintenance.changed_entities.size(), 1u);
  EXPECT_EQ(maintenance.changed_entities[0], "none");

  // Old-digest keys are gone; new-digest keys are warm and exact.
  for (const ConjunctiveQuery& feature : features) {
    EXPECT_EQ(service.PeekCached(delta.old_digest, feature.ToString()),
              nullptr);
    ASSERT_NE(service.PeekCached(delta.new_digest, feature.ToString()),
              nullptr);
  }
  std::shared_ptr<const FeatureAnswer> out_answer =
      service.PeekCached(delta.new_digest, features[0].ToString());
  EXPECT_TRUE(out_answer->SelectsName("none"));
  EXPECT_TRUE(out_answer->SelectsName("both"));

  // Bit-identical to a cold recompute.
  EvalService cold = MakeSerialService(0);
  EXPECT_EQ(service.Matrix(features, db), cold.Matrix(features, Rebuild(db)));
  EXPECT_EQ(maintainer.stats().features_patched, 2u);
  EXPECT_GT(maintainer.stats().entities_screened_out, 0u);
}

TEST(IncrementalMaintainerTest, DropModeInvalidatesBothDigests) {
  Database db = MakeWorld();
  std::vector<ConjunctiveQuery> features = OutInFeatures();
  ServeOptions options;
  options.num_shards = 1;
  options.cache_capacity = 16;
  options.incremental = false;  // Invalidate-only maintenance.
  EvalService service(options);
  service.Matrix(features, db);
  IncrementalMaintainer maintainer(&service, features);

  Delta delta = db.InsertFact(db.schema().FindRelation("E"),
                              {db.FindValue("none"), db.FindValue("t")});
  ASSERT_TRUE(delta.applied);
  DeltaMaintenance maintenance = maintainer.ApplyDelta(db, delta);
  for (const ConjunctiveQuery& feature : features) {
    EXPECT_EQ(service.PeekCached(delta.old_digest, feature.ToString()),
              nullptr);
    EXPECT_EQ(service.PeekCached(delta.new_digest, feature.ToString()),
              nullptr);
  }
  // Drop mode reports the screen's superset; the real flip is in there.
  EXPECT_NE(std::find(maintenance.changed_entities.begin(),
                      maintenance.changed_entities.end(), "none"),
            maintenance.changed_entities.end());
  EXPECT_EQ(maintainer.stats().features_dropped, 2u);
  EXPECT_EQ(maintainer.stats().features_patched, 0u);
  // The next read recomputes fresh and correct.
  EvalService cold = MakeSerialService(0);
  EXPECT_EQ(service.Matrix(features, db), cold.Matrix(features, Rebuild(db)));
}

TEST(IncrementalMaintainerTest, EntityRemovalDropsTheRow) {
  Database db = MakeWorld();
  std::vector<ConjunctiveQuery> features = OutInFeatures();
  EvalService service = MakeSerialService(16);
  service.Matrix(features, db);
  IncrementalMaintainer maintainer(&service, features);

  Delta delta =
      db.RemoveFact(db.schema().entity_relation(), {db.FindValue("both")});
  ASSERT_TRUE(delta.applied);
  ASSERT_TRUE(delta.entity_fact);
  DeltaMaintenance maintenance = maintainer.ApplyDelta(db, delta);
  EXPECT_TRUE(maintenance.entity_set_changed);
  EXPECT_NE(std::find(maintenance.changed_entities.begin(),
                      maintenance.changed_entities.end(), "both"),
            maintenance.changed_entities.end());
  std::shared_ptr<const FeatureAnswer> out_answer =
      service.PeekCached(delta.new_digest, features[0].ToString());
  ASSERT_NE(out_answer, nullptr);
  EXPECT_FALSE(out_answer->SelectsName("both"));
  EvalService cold = MakeSerialService(0);
  EXPECT_EQ(service.Matrix(features, db), cold.Matrix(features, Rebuild(db)));
}

TEST(IncrementalMaintainerTest, NoOpDeltaDoesNothing) {
  Database db = MakeWorld();
  std::vector<ConjunctiveQuery> features = OutInFeatures();
  EvalService service = MakeSerialService(16);
  service.Matrix(features, db);
  IncrementalMaintainer maintainer(&service, features);
  const Fact fact = db.fact(0);
  Delta delta = db.InsertFact(fact.relation, fact.args);
  ASSERT_FALSE(delta.applied);
  DeltaMaintenance maintenance = maintainer.ApplyDelta(db, delta);
  EXPECT_TRUE(maintenance.changed_entities.empty());
  EXPECT_EQ(maintainer.stats().noop_deltas, 1u);
  EXPECT_EQ(maintainer.stats().deltas_applied, 0u);
  for (const ConjunctiveQuery& feature : features) {
    EXPECT_NE(service.PeekCached(delta.new_digest, feature.ToString()),
              nullptr);
  }
}

TEST(IncrementalSeparabilityTest, ReusesAndWarmStartsOnStableState) {
  auto db = std::make_shared<Database>(MakeWorld());
  TrainingDatabase training(db);
  std::vector<Value> entities = db->Entities();
  training.SetLabel(entities[0], 1);   // both
  training.SetLabel(entities[1], -1);  // none
  training.SetLabel(entities[2], -1);  // out
  std::vector<ConjunctiveQuery> features = OutInFeatures();
  EvalService service = MakeSerialService(16);
  IncrementalSeparability isep(features);

  IncrementalSeparability::Verdict first =
      isep.Recheck(training, &service, {});
  EXPECT_TRUE(first.lin_separable);
  EXPECT_TRUE(first.cq_sep.separable);
  EXPECT_EQ(isep.stats().lin_resolves, 1u);
  EXPECT_EQ(isep.stats().cqsep_resolves, 1u);

  // Unchanged state: the CQ verdict is reused outright and the previous
  // separator re-certifies with zero simplex pivots.
  IncrementalSeparability::Verdict second =
      isep.Recheck(training, &service, {});
  EXPECT_TRUE(second.lin_separable);
  EXPECT_TRUE(second.cq_sep.separable);
  EXPECT_EQ(isep.stats().cqsep_reuses, 1u);
  EXPECT_EQ(isep.stats().lin_warm_hits, 1u);
  EXPECT_EQ(isep.stats().lin_resolves, 1u);
}

TEST(IncrementalSeparabilityTest, WitnessReuseSkipsTheFullSweep) {
  // Two hom-equivalent entities labeled apart: CQ-inseparable.
  auto db = std::make_shared<Database>(GraphSchema());
  Value a = AddEntity(*db, "a");
  Value b = AddEntity(*db, "b");
  AddEdge(*db, "a", "t");
  AddEdge(*db, "b", "t");
  TrainingDatabase training(db);
  training.SetLabel(a, 1);
  training.SetLabel(b, -1);
  std::vector<ConjunctiveQuery> features = OutInFeatures();
  EvalService service = MakeSerialService(16);
  IncrementalSeparability isep(features);

  IncrementalSeparability::Verdict first =
      isep.Recheck(training, &service, {});
  EXPECT_FALSE(first.cq_sep.separable);
  ASSERT_TRUE(first.cq_sep.conflict.has_value());

  // Mutate something irrelevant: the digest moves, the old conflict pair
  // stays valid, so the witness path answers without a pair sweep.
  auto mutated = std::make_shared<Database>(*db);
  mutated->InsertFact(mutated->schema().FindRelation("E"),
                      {mutated->Intern("x"), mutated->Intern("y")});
  TrainingDatabase training2(mutated);
  training2.SetLabel(a, 1);
  training2.SetLabel(b, -1);
  IncrementalSeparability::Verdict second =
      isep.Recheck(training2, &service, {});
  EXPECT_FALSE(second.cq_sep.separable);
  EXPECT_EQ(isep.stats().cqsep_witness_hits, 1u);
  EXPECT_EQ(isep.stats().cqsep_resolves, 1u);
  // The witness verdict matches the from-scratch sweep.
  EXPECT_EQ(second.cq_sep.separable, DecideCqSep(training2).separable);
}

TEST(IncrementalSeparabilityTest, RelabelIsSelfDetected) {
  auto db = std::make_shared<Database>(MakeWorld());
  TrainingDatabase training(db);
  std::vector<Value> entities = db->Entities();
  for (Value e : entities) training.SetLabel(e, 1);
  std::vector<ConjunctiveQuery> features = OutInFeatures();
  EvalService service = MakeSerialService(16);
  IncrementalSeparability isep(features);
  EXPECT_TRUE(isep.Recheck(training, &service, {}).lin_separable);

  // Flip one label WITHOUT telling Recheck: it must notice via the label
  // diff and still return the from-scratch verdicts.
  TrainingDatabase training2(db);
  training2.SetLabel(entities[0], -1);
  for (std::size_t i = 1; i < entities.size(); ++i) {
    training2.SetLabel(entities[i], 1);
  }
  IncrementalSeparability::Verdict verdict =
      isep.Recheck(training2, &service, {});
  EXPECT_EQ(verdict.cq_sep.separable, DecideCqSep(training2).separable);
  std::vector<FeatureVector> rows = service.Matrix(features, *db);
  TrainingCollection collection;
  for (std::size_t i = 0; i < entities.size(); ++i) {
    collection.emplace_back(rows[i], training2.label(entities[i]));
  }
  EXPECT_EQ(verdict.lin_separable, FindSeparator(collection).has_value());
}

/// Pins the mutation contract documented on Database (tsan enforces the
/// absence-of-races half): readers of one epoch join, the mutator runs
/// exclusively, readers of the next epoch re-fetch and observe caches that
/// were PATCHED — equal to a fresh rebuild — not dropped.
TEST(DatabaseMutationContractTest, EpochStyleMutationKeepsCachesWarm) {
  Database db = MakeWorld();
  // Epoch 1: concurrent cold readers race to build every lazy cache.
  {
    std::atomic<std::uint64_t> sink{0};
    std::vector<std::thread> readers;
    for (int i = 0; i < 4; ++i) {
      readers.emplace_back([&db, &sink] {
        sink += db.ContentDigest();
        sink += db.domain().size();
        sink += db.domain_index().size();
      });
    }
    for (std::thread& reader : readers) reader.join();
  }
  // Mutation epoch: exclusive access, established by the joins above.
  Delta insert = db.InsertFact(db.schema().FindRelation("E"),
                               {db.Intern("both"), db.Intern("fresh")});
  ASSERT_TRUE(insert.applied);
  Delta remove = db.RemoveFact(db.schema().FindRelation("E"),
                               {db.FindValue("out"), db.FindValue("t")});
  ASSERT_TRUE(remove.applied);
  // Epoch 2: readers resume with fresh references; the patched caches are
  // exactly what a cold rebuild computes.
  Database fresh = Rebuild(db);
  {
    std::atomic<int> mismatches{0};
    std::vector<std::thread> readers;
    for (int i = 0; i < 4; ++i) {
      readers.emplace_back([&db, &fresh, &mismatches] {
        if (db.ContentDigest() != fresh.ContentDigest()) ++mismatches;
        if (db.domain() != fresh.domain()) ++mismatches;
        if (db.domain_index() != fresh.domain_index()) ++mismatches;
      });
    }
    for (std::thread& reader : readers) reader.join();
    EXPECT_EQ(mismatches.load(), 0);
  }
}

}  // namespace
}  // namespace featsep
