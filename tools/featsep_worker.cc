// Standalone shard worker for the multi-process evaluation protocol
// (serve/shard_protocol.h, DESIGN.md §13): attaches to a shared work
// directory, claims (feature × entity-block) shards of any published jobs
// with atomic renames, evaluates them with the homomorphism kernel, and
// publishes checksummed result files. Completed features are written
// through the job's shared disk cache so warm restarts hit even when the
// coordinator dies. Safe to run any number of workers against one
// directory; the merged answers are bit-identical regardless.
//
// Usage:
//   featsep_worker --dir WORKDIR [--idle-exit-ms N] [--poll-ms N]
//                  [--max-shards N] [--reclaim-lease-ms N]
//   featsep_worker --smoke N     multi-process self-test: publishes a job,
//                                forks N child workers of this same binary,
//                                coordinates, and verifies the merge is
//                                bit-identical to serial evaluation.
//
// With --idle-exit-ms 0 (the default) the worker makes one pass over the
// directory and exits; a daemon-style worker passes a positive idle window.
//
// Exit codes are structured so a supervisor (serve/supervisor.h) can tell
// failures a restart may cure from poison it must never retry:
//   0  clean drain: jobs completed or nothing to do
//   2  usage error (restarting the same argv cannot help)
//   3  digest refusal: a job spec's digest disagrees with its database
//      bytes — evaluating would poison shared caches; never restarted
//   4  I/O give-up: persistent filesystem faults after retries; restartable
//   5  crash: unhandled exception (restartable, like death by signal)

#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <iostream>
#include <string>
#include <string_view>
#include <vector>

#ifndef _WIN32
#include <sys/wait.h>
#include <unistd.h>
#endif

#include "cq/enumeration.h"
#include "cq/evaluation.h"
#include "relational/training_database.h"
#include "serve/disk_cache.h"
#include "serve/shard_protocol.h"
#include "workload/generators.h"

namespace {

namespace fs = std::filesystem;

void Usage(const char* argv0) {
  std::cerr << "usage: " << argv0
            << " --dir WORKDIR [--idle-exit-ms N] [--poll-ms N]\n"
               "       [--max-shards N] [--reclaim-lease-ms N]\n"
               "   or: "
            << argv0
            << " --smoke NUM_WORKERS\n"
               "exit codes: 0 clean drain, 2 usage, 3 digest refusal "
               "(poison, never restart),\n"
               "            4 I/O give-up (restartable), 5 crash "
               "(restartable)\n";
}

int RunWorker(const std::string& work_dir,
              const featsep::serve::ShardWorkerPoolOptions& options) {
  featsep::Result<featsep::serve::ShardWorkerStats> stats =
      featsep::serve::RunShardWorkerDir(work_dir, options);
  if (!stats.ok()) {
    std::cerr << "featsep_worker: " << stats.error().message() << "\n";
    // A digest refusal is poison (restart cannot help, and evaluating would
    // poison shared caches); everything else that bubbles up here is an
    // I/O give-up after retries — a supervisor may restart those.
    return stats.error().message() ==
                   featsep::serve::kDigestRefusalMessage
               ? featsep::serve::kWorkerExitDigestRefusal
               : featsep::serve::kWorkerExitIoGiveUp;
  }
  std::cout << "featsep_worker: shards=" << stats.value().shards_completed
            << " entities=" << stats.value().entities_evaluated
            << " features_cached=" << stats.value().features_cached
            << " digest_refusals=" << stats.value().digest_refusals << "\n";
  // A pass that refused jobs and accomplished nothing else is a poison
  // signal: the directory holds work this worker must never evaluate.
  if (stats.value().digest_refusals > 0 &&
      stats.value().shards_completed == 0) {
    return featsep::serve::kWorkerExitDigestRefusal;
  }
  return featsep::serve::kWorkerExitClean;
}

/// Multi-process self-test, ctest-runnable: the parent publishes one job,
/// forks `num_workers` children exec'ing this binary in worker mode against
/// the same directory, coordinates the job to completion, and checks the
/// merged flags against plain serial CqEvaluator answers plus the shared
/// disk cache for every feature. Exercises claiming, lease renewal, result
/// publication, and cross-process merge with real separate processes.
int RunSmoke(const char* argv0, std::size_t num_workers) {
#ifdef _WIN32
  (void)argv0;
  (void)num_workers;
  std::cout << "featsep_worker --smoke: skipped (no fork on this platform)\n";
  return 0;
#else
  featsep::RandomGraphParams params;
  params.num_entities = 8;
  params.num_background_nodes = 20;
  params.num_background_edges = 30;
  params.seed = 7;
  auto training = featsep::RandomPlantedGraph(params);
  const featsep::Database& db = training->database();
  std::vector<featsep::ConjunctiveQuery> features =
      featsep::EnumerateFeatureQueries(featsep::GraphWorkloadSchema(), 1);
  std::vector<std::string> feature_strings;
  for (const auto& feature : features) {
    feature_strings.push_back(feature.ToString());
  }

  const fs::path root =
      fs::temp_directory_path() /
      ("featsep-worker-smoke-" + std::to_string(::getpid()));
  const std::string work_dir = (root / "work").string();
  const std::string cache_dir = (root / "cache").string();
  const std::string job_dir = (root / "work" / "job-smoke").string();
  std::error_code ec;
  fs::remove_all(root, ec);
  fs::create_directories(work_dir);

  // Small blocks → many shards, so the children genuinely race the parent
  // for claims.
  const std::size_t entity_block = 2;
  featsep::Result<std::size_t> published = featsep::serve::PublishShardJob(
      job_dir, db, feature_strings, entity_block, cache_dir);
  if (!published.ok()) {
    std::cerr << "smoke: publish failed: " << published.error().message()
              << "\n";
    return 1;
  }
  std::cout << "smoke: published " << published.value() << " shards for "
            << features.size() << " features\n";

  std::vector<pid_t> children;
  for (std::size_t w = 0; w < num_workers; ++w) {
    pid_t pid = ::fork();
    if (pid < 0) {
      std::cerr << "smoke: fork failed\n";
      return 1;
    }
    if (pid == 0) {
      ::execl(argv0, argv0, "--dir", work_dir.c_str(), "--idle-exit-ms",
              "2000", (char*)nullptr);
      std::cerr << "smoke: exec failed\n";
      std::_Exit(127);
    }
    children.push_back(pid);
  }

  featsep::serve::ShardJob job;
  job.db = &db;
  job.features = features;
  job.feature_strings = feature_strings;
  job.digest = db.ContentDigest();
  job.entity_block = entity_block;
  job.cache_dir = cache_dir;
  job.entities = db.Entities();

  featsep::serve::ShardCoordinatorOptions coordinator;
  coordinator.lease = std::chrono::milliseconds(5000);
  featsep::Result<featsep::serve::ShardMergeResult> merged =
      featsep::serve::CoordinateShardJob(job_dir, job, coordinator);

  int failures = 0;
  for (pid_t pid : children) {
    int status = 0;
    ::waitpid(pid, &status, 0);
    if (!WIFEXITED(status) || WEXITSTATUS(status) != 0) {
      std::cerr << "smoke: worker " << pid << " exited abnormally\n";
      ++failures;
    }
  }
  if (!merged.ok()) {
    std::cerr << "smoke: coordinate failed: " << merged.error().message()
              << "\n";
    fs::remove_all(root, ec);
    return 1;
  }

  // The merged flags must be bit-identical to plain serial evaluation.
  const std::vector<featsep::Value> entities = db.Entities();
  for (std::size_t f = 0; f < features.size(); ++f) {
    featsep::CqEvaluator evaluator(features[f]);
    for (std::size_t e = 0; e < entities.size(); ++e) {
      const char expected = evaluator.SelectsEntity(db, entities[e]) ? 1 : 0;
      if (merged.value().flags[f][e] != expected) {
        std::cerr << "smoke: MISMATCH feature " << f << " entity " << e
                  << "\n";
        ++failures;
      }
    }
  }

  // Every feature must have been written through the shared disk cache, and
  // the cached answer must agree with the merge.
  featsep::serve::DiskResultCache cache(cache_dir);
  for (std::size_t f = 0; f < features.size(); ++f) {
    auto names = cache.Load(job.digest, feature_strings[f]);
    if (!names.has_value()) {
      std::cerr << "smoke: feature " << f << " missing from disk cache\n";
      ++failures;
      continue;
    }
    std::size_t selected = 0;
    for (char flag : merged.value().flags[f]) selected += flag != 0 ? 1 : 0;
    if (names->size() != selected) {
      std::cerr << "smoke: feature " << f << " cache size " << names->size()
                << " != merged " << selected << "\n";
      ++failures;
    }
  }

  std::cout << "smoke: local_shards=" << merged.value().local_shards
            << " remote_shards=" << merged.value().remote_shards
            << " reclaimed=" << merged.value().reclaimed_leases << "\n";
  fs::remove_all(root, ec);
  if (failures == 0) {
    std::cout << "smoke: OK (merge bit-identical to serial; cache complete)\n";
    return 0;
  }
  std::cerr << "smoke: FAILED with " << failures << " error(s)\n";
  return 1;
#endif
}

}  // namespace

int Run(int argc, char** argv) {
  std::string work_dir;
  std::size_t smoke_workers = 0;
  bool smoke = false;
  featsep::serve::ShardWorkerPoolOptions options;

  for (int i = 1; i < argc; ++i) {
    std::string_view arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        Usage(argv[0]);
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--dir") {
      work_dir = next();
    } else if (arg == "--idle-exit-ms") {
      options.idle_exit =
          std::chrono::milliseconds(std::strtoll(next(), nullptr, 10));
    } else if (arg == "--poll-ms") {
      options.poll =
          std::chrono::milliseconds(std::strtoll(next(), nullptr, 10));
    } else if (arg == "--max-shards") {
      options.worker.max_shards = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--reclaim-lease-ms") {
      options.worker.reclaim_lease =
          std::chrono::milliseconds(std::strtoll(next(), nullptr, 10));
    } else if (arg == "--smoke") {
      smoke = true;
      smoke_workers = std::strtoull(next(), nullptr, 10);
    } else {
      Usage(argv[0]);
      return 2;
    }
  }

  if (smoke) return RunSmoke(argv[0], smoke_workers);
  if (work_dir.empty()) {
    Usage(argv[0]);
    return featsep::serve::kWorkerExitUsage;
  }
  return RunWorker(work_dir, options);
}

int main(int argc, char** argv) {
  try {
    return Run(argc, argv);
  } catch (const std::exception& e) {
    std::cerr << "featsep_worker: crash: " << e.what() << "\n";
    return featsep::serve::kWorkerExitCrash;
  } catch (...) {
    std::cerr << "featsep_worker: crash: unknown exception\n";
    return featsep::serve::kWorkerExitCrash;
  }
}
