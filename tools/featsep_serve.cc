// Demo driver for the async serve front-end (serve/async_service.h): builds
// a random planted-feature graph world, enumerates the CQ[m] feature bank,
// and pushes a stream of mixed-priority requests with a deadline through an
// AsyncEvalService, then prints the request lifecycle counters and latency
// percentiles. A quick way to watch admission control, priority dispatch,
// and deadline expiry behave under load without running the full bench.
//
// Usage:
//   featsep_serve [--requests N] [--nodes N] [--m M] [--queue CAP]
//                 [--dispatchers N] [--shards N] [--deadline-ms D]
//                 [--batch-frac F] [--seed S] [--cache-dir DIR]
//                 [--require-warm-disk]
// A deadline of 0 means unbounded requests (nothing expires).
//
// --cache-dir enables the persistent on-disk result tier (DESIGN.md §13):
// run the tool twice with the same directory and seed and the second
// process serves the whole feature bank from disk without re-running the
// kernel. --require-warm-disk turns that into an assertion (exit 1 unless
// at least one answer was served from the disk tier and nothing was
// kernel-evaluated that the cache already held) — the CI warm-restart
// smoke runs exactly that pair.

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <iostream>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "cq/enumeration.h"
#include "relational/training_database.h"
#include "serve/async_service.h"
#include "workload/generators.h"

namespace {

void Usage(const char* argv0) {
  std::cerr << "usage: " << argv0
            << " [--requests N] [--nodes N] [--m M] [--queue CAP]\n"
               "       [--dispatchers N] [--shards N] [--deadline-ms D]\n"
               "       [--batch-frac F] [--seed S] [--cache-dir DIR]\n"
               "       [--require-warm-disk]\n";
}

double Percentile(std::vector<double> sorted, double p) {
  if (sorted.empty()) return 0.0;
  std::size_t index = static_cast<std::size_t>(p * (sorted.size() - 1));
  return sorted[index];
}

}  // namespace

int main(int argc, char** argv) {
  using featsep::serve::AsyncEvalService;
  using featsep::serve::AsyncServeOptions;
  using featsep::serve::RequestHandle;
  using featsep::serve::RequestPriority;
  using featsep::serve::SubmitOptions;
  using Clock = std::chrono::steady_clock;

  std::size_t requests = 200;
  std::size_t nodes = 30;
  std::size_t m = 1;
  double batch_frac = 0.5;
  std::uint64_t seed = 1;
  std::int64_t deadline_ms = 50;
  bool require_warm_disk = false;
  AsyncServeOptions options;

  for (int i = 1; i < argc; ++i) {
    std::string_view arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        Usage(argv[0]);
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--requests") {
      requests = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--nodes") {
      nodes = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--m") {
      m = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--queue") {
      options.queue_capacity = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--dispatchers") {
      options.num_dispatchers = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--shards") {
      options.serve.num_shards = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--deadline-ms") {
      deadline_ms = std::strtoll(next(), nullptr, 10);
    } else if (arg == "--batch-frac") {
      batch_frac = std::strtod(next(), nullptr);
    } else if (arg == "--seed") {
      seed = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--cache-dir") {
      options.serve.cache_dir = next();
    } else if (arg == "--require-warm-disk") {
      require_warm_disk = true;
    } else {
      Usage(argv[0]);
      return 2;
    }
  }

  featsep::RandomGraphParams params;
  params.num_entities = std::max<std::size_t>(nodes / 3, 2);
  params.num_background_nodes = nodes;
  params.num_background_edges = nodes + nodes / 2;
  params.seed = seed;
  auto training = featsep::RandomPlantedGraph(params);
  std::shared_ptr<const featsep::Database> db = training->database_ptr();
  std::vector<featsep::ConjunctiveQuery> features =
      featsep::EnumerateFeatureQueries(featsep::GraphWorkloadSchema(), m);

  std::cout << "featsep_serve: " << requests << " requests, "
            << features.size() << " features (m=" << m << "), "
            << db->Entities().size() << " entities, queue="
            << options.queue_capacity << ", deadline=" << deadline_ms
            << "ms\n";

  AsyncEvalService service(options);
  featsep::WorkloadRng rng(seed ^ 0x5e57ebeefULL);
  std::vector<std::pair<RequestHandle, Clock::time_point>> in_flight;
  in_flight.reserve(requests);
  for (std::size_t i = 0; i < requests; ++i) {
    SubmitOptions submit;
    submit.priority = rng.Chance(batch_frac) ? RequestPriority::kBatch
                                             : RequestPriority::kInteractive;
    if (deadline_ms > 0) {
      // Spread deadlines over [D/2, 3D/2] so some requests expire under
      // load while most complete.
      submit.timeout = std::chrono::milliseconds(
          deadline_ms / 2 + static_cast<std::int64_t>(rng.Below(
                                static_cast<std::size_t>(deadline_ms) + 1)));
    }
    in_flight.emplace_back(service.Submit(features, db, submit), Clock::now());
  }

  std::vector<double> latencies_ms;
  latencies_ms.reserve(in_flight.size());
  for (auto& [handle, submitted_at] : in_flight) {
    handle.Wait();
    latencies_ms.push_back(
        std::chrono::duration<double, std::milli>(Clock::now() - submitted_at)
            .count());
  }
  std::sort(latencies_ms.begin(), latencies_ms.end());

  auto stats = service.stats();
  for (RequestPriority priority :
       {RequestPriority::kInteractive, RequestPriority::kBatch}) {
    const auto& cls = stats.of(priority);
    std::cout << "  " << featsep::serve::RequestPriorityName(priority)
              << ": submitted=" << cls.submitted
              << " accepted=" << cls.accepted << " rejected=" << cls.rejected
              << " completed=" << cls.completed << " expired=" << cls.expired
              << " cancelled=" << cls.cancelled
              << " queue_high_water=" << cls.queue_high_water << "\n";
  }
  auto backend = service.backend().stats();
  std::cout << "  backend: evaluated=" << backend.features_evaluated
            << " cache_hits=" << backend.cache_hits
            << " cancelled_shards=" << backend.cancelled_shards << "\n";
  if (!options.serve.cache_dir.empty()) {
    std::cout << "  disk: hits=" << backend.disk_hits
              << " misses=" << backend.disk_misses
              << " writes=" << backend.disk_writes
              << " drops=" << backend.disk_drops << "\n";
  }
  std::cout << "  wait-latency ms: p50=" << Percentile(latencies_ms, 0.5)
            << " p90=" << Percentile(latencies_ms, 0.9)
            << " p99=" << Percentile(latencies_ms, 0.99) << "\n";
  if (require_warm_disk) {
    // Warm-restart assertion for the two-process CI smoke: a second process
    // over the same cache directory must serve from the disk tier instead
    // of re-running the kernel.
    if (backend.disk_hits == 0) {
      std::cerr << "featsep_serve: --require-warm-disk but disk_hits=0\n";
      return 1;
    }
    if (backend.features_evaluated > 0) {
      std::cerr << "featsep_serve: --require-warm-disk but "
                << backend.features_evaluated << " features were re-run\n";
      return 1;
    }
  }
  return 0;
}
