// Differential fuzzer for the featsep engines.
//
// Loops generate -> check -> shrink over seeded random instances, comparing
// the optimized kernels against the naive reference oracle and metamorphic
// laws (see src/testing/). Every failure prints a `--seed S --iters 1`
// command line that regenerates the identical instance.
//
// Usage:
//   featsep_fuzz [--iters N] [--seed S] [--config NAME] [--no-shrink]
// Configs: hom, eval, containment, core, ghw, sep, qbe, mixed (default).

#include <cstdint>
#include <cstdlib>
#include <iostream>
#include <string>
#include <string_view>

#include "testing/fuzz.h"

namespace {

void Usage(const char* argv0) {
  std::cerr << "usage: " << argv0
            << " [--iters N] [--seed S] [--config "
               "hom|eval|containment|core|ghw|sep|qbe|mixed] [--no-shrink]\n";
}

}  // namespace

int main(int argc, char** argv) {
  featsep::testing::FuzzOptions options;
  for (int i = 1; i < argc; ++i) {
    std::string_view arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::cerr << "missing value for " << arg << "\n";
        Usage(argv[0]);
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--iters") {
      options.iterations = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--seed") {
      options.seed = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--config") {
      const char* name = next();
      auto config = featsep::testing::ParseFuzzConfig(name);
      if (!config.has_value()) {
        std::cerr << "unknown config: " << name << "\n";
        Usage(argv[0]);
        return 2;
      }
      options.config = *config;
    } else if (arg == "--no-shrink") {
      options.shrink = false;
    } else if (arg == "--help" || arg == "-h") {
      Usage(argv[0]);
      return 0;
    } else {
      std::cerr << "unknown argument: " << arg << "\n";
      Usage(argv[0]);
      return 2;
    }
  }

  std::cout << "featsep_fuzz: config="
            << featsep::testing::FuzzConfigName(options.config)
            << " seed=" << options.seed << " iters=" << options.iterations
            << (options.shrink ? "" : " (no shrink)") << std::endl;

  featsep::testing::FuzzReport report =
      featsep::testing::RunFuzz(options, &std::cerr);

  if (report.ok()) {
    std::cout << "OK: " << report.iterations
              << " iterations, no discrepancies" << std::endl;
    return 0;
  }
  std::cout << "FAILED: " << report.failures.size() << " discrepanc"
            << (report.failures.size() == 1 ? "y" : "ies") << " in "
            << report.iterations << " iterations" << std::endl;
  for (const auto& failure : report.failures) {
    std::cout << "  [" << failure.config << "/" << failure.property
              << "] reproduce: " << failure.reproduce << std::endl;
  }
  return 1;
}
