// Differential fuzzer for the featsep engines.
//
// Loops generate -> check -> shrink over seeded random instances, comparing
// the optimized kernels against the naive reference oracle and metamorphic
// laws (see src/testing/). Every failure prints a `--seed S --iters 1`
// command line that regenerates the identical instance.
//
// With --corpus and/or --mutate the loop turns coverage-guided: the
// instrumented kernels (src/testing/coverage.h) are bracketed around every
// check, inputs producing new (site, hit-bucket) edges are minimized and
// admitted to the corpus, and most iterations mutate a corpus entry picked
// with energy proportional to how rare its edges are. Failures found by
// mutation are persisted under <corpus>/crashes/ and reproduce with
// --replay.
//
// Usage:
//   featsep_fuzz [--iters N] [--seed S] [--config NAME] [--no-shrink]
//                [--corpus DIR] [--mutate] [--coverage-stats]
//                [--replay FILE]...
// Configs: hom, eval, containment, core, ghw, sep, qbe, covergame,
// dimension, linsep, faults, serve, incremental, crashio, mixed (default).
// The faults config injects deterministic cancellations/timeouts/allocation
// failures into the budgeted decision procedures and checks the robustness
// invariants (no cache poisoning, interrupt-then-resume determinism). The
// serve config runs seeded random Submit/poll/cancel/pause interleavings
// through the async serve front-end against the serial evaluation path as
// oracle. The crashio config runs the durable tier (disk cache, breaker-
// gated EvalService, shard protocol) under seeded filesystem fault
// schedules — EIO/ENOSPC, torn writes, partial scans, kill-at-a-random-I/O-
// point then recover — checking that corrupt entries are never trusted,
// answers stay bit-identical to serial, and no shard job is ever lost.

#include <cstdint>
#include <cstdlib>
#include <iostream>
#include <string>
#include <string_view>

#include "testing/fuzz.h"

namespace {

void Usage(const char* argv0) {
  std::cerr
      << "usage: " << argv0
      << " [--iters N] [--seed S] [--config hom|eval|containment|core|ghw|"
         "sep|qbe|covergame|dimension|linsep|faults|serve|incremental|"
         "crashio|mixed] "
         "[--no-shrink]\n"
         "       [--corpus DIR] [--mutate] [--coverage-stats] "
         "[--replay FILE]...\n";
}

}  // namespace

int main(int argc, char** argv) {
  featsep::testing::FuzzOptions options;
  for (int i = 1; i < argc; ++i) {
    std::string_view arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::cerr << "missing value for " << arg << "\n";
        Usage(argv[0]);
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--iters") {
      options.iterations = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--seed") {
      options.seed = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--config") {
      const char* name = next();
      auto config = featsep::testing::ParseFuzzConfig(name);
      if (!config.has_value()) {
        std::cerr << "unknown config: " << name << "\n";
        Usage(argv[0]);
        return 2;
      }
      options.config = *config;
    } else if (arg == "--no-shrink") {
      options.shrink = false;
    } else if (arg == "--corpus") {
      options.corpus_dir = next();
    } else if (arg == "--mutate") {
      options.mutate = true;
    } else if (arg == "--coverage-stats") {
      options.coverage_stats = true;
    } else if (arg == "--replay") {
      options.replay_paths.emplace_back(next());
    } else if (arg == "--help" || arg == "-h") {
      Usage(argv[0]);
      return 0;
    } else {
      std::cerr << "unknown argument: " << arg << "\n";
      Usage(argv[0]);
      return 2;
    }
  }

  if (!options.replay_paths.empty()) {
    std::cout << "featsep_fuzz: replaying " << options.replay_paths.size()
              << " instance(s)" << (options.shrink ? "" : " (no shrink)")
              << std::endl;
  } else {
    std::cout << "featsep_fuzz: config="
              << featsep::testing::FuzzConfigName(options.config)
              << " seed=" << options.seed << " iters=" << options.iterations
              << (options.mutate || !options.corpus_dir.empty()
                      ? " (coverage-guided)"
                      : "")
              << (options.corpus_dir.empty() ? ""
                                             : " corpus=" +
                                                   options.corpus_dir)
              << (options.shrink ? "" : " (no shrink)") << std::endl;
  }

  featsep::testing::FuzzReport report =
      featsep::testing::RunFuzz(options, &std::cerr);

  if (report.coverage_edges > 0 || report.corpus_size > 0) {
    std::cout << "coverage: " << report.coverage_edges
              << " edges; corpus: " << report.corpus_size << " entries (+"
              << report.corpus_added << " this run)" << std::endl;
  }
  for (const auto& line : report.coverage_lines) {
    std::cout << "  " << line << std::endl;
  }

  if (report.ok()) {
    std::cout << "OK: " << report.iterations
              << " iterations, no discrepancies" << std::endl;
    return 0;
  }
  std::cout << "FAILED: " << report.failures.size() << " discrepanc"
            << (report.failures.size() == 1 ? "y" : "ies") << " in "
            << report.iterations << " iterations" << std::endl;
  for (const auto& failure : report.failures) {
    std::cout << "  [" << failure.config << "/" << failure.property
              << "] reproduce: " << failure.reproduce << std::endl;
  }
  return 1;
}
